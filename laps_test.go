package laps_test

import (
	"bytes"
	"testing"

	"laps"
)

func trafficFor(svc laps.ServiceID, mpps float64, seed uint64) laps.ServiceTraffic {
	return laps.ServiceTraffic{
		Service: svc,
		Params:  laps.RateParams{A: mpps},
		Trace: laps.NewTrace(laps.TraceConfig{
			Name: "t", Flows: 2000, Skew: 1.1, Seed: seed,
		}),
	}
}

func TestSimulateRequiresTraffic(t *testing.T) {
	if _, err := laps.Simulate(laps.SimConfig{}); err == nil {
		t.Fatal("empty config did not error")
	}
}

func TestSimulateRejectsBadService(t *testing.T) {
	_, err := laps.Simulate(laps.SimConfig{
		StackConfig: laps.StackConfig{Traffic: []laps.ServiceTraffic{trafficFor(laps.ServiceID(7), 1, 1)}},
	})
	if err == nil {
		t.Fatal("service ID 7 accepted")
	}
	_, err = laps.Simulate(laps.SimConfig{
		StackConfig: laps.StackConfig{Traffic: []laps.ServiceTraffic{{Service: laps.SvcIPForward}}},
	})
	if err == nil {
		t.Fatal("nil trace accepted")
	}
	_, err = laps.Simulate(laps.SimConfig{
		StackConfig: laps.StackConfig{
			Scheduler: "bogus",
			Traffic:   []laps.ServiceTraffic{trafficFor(laps.SvcIPForward, 1, 1)},
		},
	})
	if err == nil {
		t.Fatal("unknown scheduler accepted")
	}
}

func TestSimulateAllSchedulers(t *testing.T) {
	for _, kind := range []laps.SchedulerKind{laps.LAPS, laps.FCFS, laps.AFS, laps.HashOnly, laps.Oracle} {
		res, err := laps.Simulate(laps.SimConfig{
			StackConfig: laps.StackConfig{
				Scheduler: kind,
				Duration:  2 * laps.Millisecond,
				Traffic:   []laps.ServiceTraffic{trafficFor(laps.SvcIPForward, 2, 3)},
			},
		})
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if res.Generated == 0 || res.Metrics.Completed == 0 {
			t.Fatalf("%s: no traffic flowed: %+v", kind, res.Metrics)
		}
		m := res.Metrics
		if m.Enqueued+m.Dropped != m.Injected || m.Completed != m.Enqueued {
			t.Fatalf("%s: conservation violated: %+v", kind, m)
		}
		if kind == laps.LAPS && res.LapsStats == nil {
			t.Fatal("LAPS run missing scheduler stats")
		}
		if kind != laps.LAPS && res.LapsStats != nil {
			t.Fatalf("%s: unexpected LAPS stats", kind)
		}
	}
}

func TestSimulateCustomScheduler(t *testing.T) {
	res, err := laps.Simulate(laps.SimConfig{
		StackConfig: laps.StackConfig{
			Custom:   laps.NewOracleScheduler(4),
			Duration: laps.Millisecond,
			Traffic:  []laps.ServiceTraffic{trafficFor(laps.SvcIPForward, 1, 1)},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Scheduler != "oracle-top4" {
		t.Fatalf("scheduler = %q", res.Scheduler)
	}
}

func TestSimulateDeterministic(t *testing.T) {
	run := func() laps.Metrics {
		res, err := laps.Simulate(laps.SimConfig{
			StackConfig: laps.StackConfig{
				Duration: 2 * laps.Millisecond,
				Seed:     9,
				Traffic: []laps.ServiceTraffic{
					trafficFor(laps.SvcIPForward, 2, 1),
					trafficFor(laps.SvcMalwareScan, 0.3, 2),
				},
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.Metrics
	}
	if run() != run() {
		t.Fatal("identical Simulate calls diverged")
	}
}

func TestDetectorFacade(t *testing.T) {
	det := laps.NewDetector(laps.DetectorConfig{AFCSize: 8, AnnexSize: 64, PromoteThreshold: 2})
	truth := laps.NewExactCounter()
	src := laps.NewTrace(laps.TraceConfig{Name: "t", Flows: 500, Skew: 1.3, Seed: 4})
	for i := 0; i < 50000; i++ {
		rec, _ := src.Next()
		det.Observe(rec.Flow)
		truth.Observe(rec.Flow)
	}
	acc := laps.EvaluateDetector(det.Aggressive(), truth, 8)
	if acc.Detected == 0 {
		t.Fatal("detector found nothing")
	}
	if acc.Recall < 0.5 {
		t.Fatalf("recall %.2f on an easy Zipf trace", acc.Recall)
	}
}

func TestTracePresetsAndPcapFacade(t *testing.T) {
	src := laps.CAIDATrace(1)
	var recs []laps.TimedRecord
	for i := 0; i < 200; i++ {
		rec, ok := src.Next()
		if !ok {
			t.Fatal("preset exhausted")
		}
		recs = append(recs, laps.TimedRecord{Record: rec, TS: laps.Time(i) * laps.Microsecond})
	}
	var buf bytes.Buffer
	if err := laps.WritePcap(&buf, recs); err != nil {
		t.Fatal(err)
	}
	got, err := laps.ReadPcap(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs) {
		t.Fatalf("pcap round trip %d != %d", len(got), len(recs))
	}
	// Replay them as a source again.
	var plain []laps.TraceRecord
	for _, r := range got {
		plain = append(plain, r.Record)
	}
	rp := laps.ReplayTrace("replay", plain, false)
	n := 0
	for {
		if _, ok := rp.Next(); !ok {
			break
		}
		n++
	}
	if n != len(plain) {
		t.Fatalf("replay yielded %d records", n)
	}
	if laps.AucklandTrace(1).Name() == "" {
		t.Fatal("auckland preset unnamed")
	}
}

func TestExperimentRegistryFacade(t *testing.T) {
	names := laps.Experiments()
	if len(names) == 0 {
		t.Fatal("no experiments registered")
	}
	tables, err := laps.RunExperiment("tab4", laps.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 1 || len(tables[0].Rows) != 8 {
		t.Fatalf("tab4 returned %v", tables)
	}
	if _, err := laps.RunExperiment("missing", laps.Options{}); err == nil {
		t.Fatal("unknown experiment did not error")
	}
}

func TestSchedulerFacade(t *testing.T) {
	s := laps.NewScheduler(laps.SchedulerConfig{TotalCores: 8, Services: 2})
	if s.Name() != "laps" {
		t.Fatal("scheduler name")
	}
	if got := len(s.CoresOf(0)); got != 4 {
		t.Fatalf("service 0 cores = %d", got)
	}
}

func TestSimulateConsolidate(t *testing.T) {
	res, err := laps.Simulate(laps.SimConfig{
		StackConfig: laps.StackConfig{
			Scheduler:   laps.LAPS,
			Consolidate: true,
			Duration:    5 * laps.Millisecond,
			Seed:        4,
			Traffic: []laps.ServiceTraffic{{
				Service: laps.SvcIPForward,
				Params:  laps.RateParams{A: 2}, // light: plenty to consolidate
				Trace:   laps.CAIDATrace(1),
			}},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.LapsStats == nil || res.LapsStats.Parks == 0 {
		t.Fatalf("no cores parked under light load: %+v", res.LapsStats)
	}
	if res.Metrics.Dropped != 0 {
		t.Fatalf("consolidation dropped %d packets at 6%% load", res.Metrics.Dropped)
	}
	// Parked cores expose gateable idleness.
	est := laps.AnalyzePower(res.Cores, res.Duration, laps.DefaultPowerModel())
	if est.Savings() <= 0 {
		t.Fatalf("consolidation yielded no power savings: %v", est)
	}
}

func TestSimulateLatencyHistograms(t *testing.T) {
	res, err := laps.Simulate(laps.SimConfig{
		StackConfig: laps.StackConfig{
			Duration: 2 * laps.Millisecond,
			Seed:     6,
			Traffic: []laps.ServiceTraffic{{
				Service: laps.SvcIPForward,
				Params:  laps.RateParams{A: 3},
				Trace:   laps.CAIDATrace(1),
			}},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	m := res.Metrics
	if m.Latency[laps.SvcIPForward].N() != m.Completed {
		t.Fatalf("latency samples %d != completed %d",
			m.Latency[laps.SvcIPForward].N(), m.Completed)
	}
	mean := m.LatencyMean(laps.SvcIPForward)
	p99 := m.LatencyP99(laps.SvcIPForward)
	if mean < 500 { // cannot be below the 0.5us service time
		t.Fatalf("mean latency %v below service time", mean)
	}
	if p99 < mean {
		t.Fatalf("p99 %v below mean %v", p99, mean)
	}
}
