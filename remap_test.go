package laps

import (
	"testing"

	"laps/internal/afd"
	"laps/internal/core"
	"laps/internal/npsim"
	"laps/internal/obs"
	"laps/internal/packet"
)

// fakeSched records what the remap wrapper hands it.
type fakeSched struct {
	rec  *obs.Recorder
	last packet.Packet
	n    int
}

func (f *fakeSched) Name() string                { return "fake" }
func (f *fakeSched) SetRecorder(r *obs.Recorder) { f.rec = r }
func (f *fakeSched) Target(p *packet.Packet, _ npsim.View) int {
	f.last = *p
	f.n++
	return int(p.Service)
}

func TestRemapSchedulerPassthrough(t *testing.T) {
	inner := &fakeSched{}
	rm := &remapScheduler{inner: inner}
	if rm.Name() != "fake" {
		t.Fatalf("Name() = %q, want the wrapped scheduler's name", rm.Name())
	}
	rec := obs.NewRecorder(16)
	rm.SetRecorder(rec)
	if inner.rec != rec {
		t.Fatal("SetRecorder did not reach the wrapped scheduler")
	}
}

func TestRemapSchedulerRemapsServiceOnACopy(t *testing.T) {
	inner := &fakeSched{}
	// Services 2 and 3 are active; they compact onto 0 and 1.
	var remap [packet.NumServices]ServiceID
	remap[2], remap[3] = 0, 1
	rm := &remapScheduler{inner: inner, remap: remap}

	p := &packet.Packet{ID: 7, Service: 3, Size: 1200}
	if got := rm.Target(p, nil); got != 1 {
		t.Fatalf("Target = %d, want remapped service 1", got)
	}
	if inner.last.Service != 1 {
		t.Fatalf("wrapped scheduler saw service %d, want 1", inner.last.Service)
	}
	if inner.last.ID != 7 || inner.last.Size != 1200 {
		t.Fatalf("wrapped scheduler saw a mangled packet: %+v", inner.last)
	}
	if p.Service != 3 {
		t.Fatalf("original packet mutated: service became %d", p.Service)
	}
	if inner.n != 1 {
		t.Fatalf("wrapped scheduler called %d times, want 1", inner.n)
	}
}

func TestRemapSchedulerIgnoresNonSetterInner(t *testing.T) {
	// An inner scheduler without SetRecorder must not panic the wrapper.
	rm := &remapScheduler{inner: bareSched{}}
	rm.SetRecorder(obs.NewRecorder(1)) // no-op, but must be safe
}

type bareSched struct{}

func (bareSched) Name() string                          { return "bare" }
func (bareSched) Target(*packet.Packet, npsim.View) int { return 0 }

func TestLapsOfUnwrapsAllWrappers(t *testing.T) {
	l := core.New(core.Config{TotalCores: 4, Services: 1, AFD: afd.Config{Seed: 1}})
	if lapsOf(l) != l {
		t.Fatal("lapsOf(LAPS) != LAPS")
	}
	if got := lapsOf(&remapScheduler{inner: l}); got != l {
		t.Fatal("lapsOf did not unwrap remapScheduler")
	}
	if got := lapsOf(&mirrorScheduler{inner: &remapScheduler{inner: l}}); got != l {
		t.Fatal("lapsOf did not unwrap mirror-over-remap")
	}
	if lapsOf(bareSched{}) != nil {
		t.Fatal("lapsOf invented a LAPS from a non-LAPS scheduler")
	}
	if lapsOf(nil) != nil {
		t.Fatal("lapsOf(nil) != nil")
	}
}
