package laps_test

import (
	"bytes"
	"context"
	"io"
	"net"
	"net/http"
	"reflect"
	"strings"
	"testing"
	"time"

	"laps"
)

// liveTraffic is a two-service load that keeps LAPS busy enough to
// migrate, split maps and promote AFC entries within a few virtual ms.
func liveTraffic(seed uint64) []laps.ServiceTraffic {
	return []laps.ServiceTraffic{
		trafficFor(laps.SvcIPForward, 3, seed),
		trafficFor(laps.SvcVPNOut, 1.5, seed+101),
	}
}

func TestRunLiveSmoke(t *testing.T) {
	res, err := laps.Run(laps.RunConfig{
		StackConfig: laps.StackConfig{
			Duration: 2 * laps.Millisecond,
			Seed:     3,
			Traffic:  liveTraffic(3),
		},
		Workers: 4,
		Block:   true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Generated == 0 {
		t.Fatal("no traffic generated")
	}
	if res.Live.Dispatched != res.Generated {
		t.Fatalf("dispatched %d != generated %d", res.Live.Dispatched, res.Generated)
	}
	if res.Live.Processed != res.Live.Dispatched {
		t.Fatalf("block policy lost packets: processed %d of %d",
			res.Live.Processed, res.Live.Dispatched)
	}
	if res.Live.OutOfOrder != 0 {
		t.Fatalf("fencing let %d packets reorder", res.Live.OutOfOrder)
	}
	if res.Scheduler != "laps" || res.LapsStats == nil {
		t.Fatalf("expected LAPS run with stats, got %q (%v)", res.Scheduler, res.LapsStats)
	}
}

func TestRunLiveTelemetry(t *testing.T) {
	rec := laps.NewRecorder(0)
	res, err := laps.Run(laps.RunConfig{
		StackConfig: laps.StackConfig{
			Duration: 2 * laps.Millisecond,
			Seed:     5,
			Traffic:  liveTraffic(5),
		},
		Workers:         4,
		Block:           true,
		Trace:           rec,
		MetricsInterval: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rec.Total() == 0 {
		t.Fatal("live LAPS run emitted no control-plane events")
	}
	if res.Live.Series == nil {
		t.Fatal("metrics interval set but no series")
	}
}

// TestRunLiveWithFaults drives fault injection through the public API:
// a stall past the window plus a kill, under backpressure — nothing may
// drop or reorder, and the recovery counters must surface in EngineStats.
func TestRunLiveWithFaults(t *testing.T) {
	res, err := laps.Run(laps.RunConfig{
		StackConfig: laps.StackConfig{
			Duration: 2 * laps.Millisecond,
			Seed:     3,
			Traffic:  liveTraffic(3),
		},
		Workers: 4,
		Block:   true,
		Faults: &laps.FaultPlan{Faults: []laps.Fault{
			{Worker: 1, After: 500, Kind: laps.FaultStall, Duration: 600 * time.Millisecond},
			{Worker: 3, After: 800, Kind: laps.FaultKill},
		}},
		DetectWindow: 60 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Live.Processed != res.Live.Dispatched || res.Live.Dropped != 0 {
		t.Fatalf("faulted block run lost packets: processed %d of %d, dropped %d",
			res.Live.Processed, res.Live.Dispatched, res.Live.Dropped)
	}
	if res.Live.OutOfOrder != 0 {
		t.Fatalf("recovery reordered %d packets", res.Live.OutOfOrder)
	}
	if res.Live.WorkerDeaths == 0 {
		t.Fatal("injected kill never quarantined")
	}
	if !res.Live.Workers[3].Dead {
		t.Fatal("killed worker 3 not reported dead")
	}
}

// TestRunLiveSharded drives the sharded data plane through the public
// API: flow-affine ingress shards resolving against published LAPS
// snapshots must lose nothing and reorder nothing under backpressure.
func TestRunLiveSharded(t *testing.T) {
	res, err := laps.Run(laps.RunConfig{
		StackConfig: laps.StackConfig{
			Duration: 2 * laps.Millisecond,
			Seed:     3,
			Traffic:  liveTraffic(3),
		},
		Workers:     4,
		Dispatchers: 2,
		Block:       true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Live.Dispatchers != 2 {
		t.Fatalf("Dispatchers = %d, want 2", res.Live.Dispatchers)
	}
	if res.Live.Dispatched != res.Generated {
		t.Fatalf("dispatched %d != generated %d", res.Live.Dispatched, res.Generated)
	}
	if res.Live.Processed != res.Live.Dispatched || res.Live.Dropped != 0 {
		t.Fatalf("sharded block run lost packets: processed %d of %d, dropped %d",
			res.Live.Processed, res.Live.Dispatched, res.Live.Dropped)
	}
	if res.Live.OutOfOrder != 0 {
		t.Fatalf("sharded fencing let %d packets reorder", res.Live.OutOfOrder)
	}
	if res.Live.Snapshots == 0 {
		t.Fatal("control plane never published a forwarding snapshot")
	}
	if res.Scheduler != "laps" || res.LapsStats == nil {
		t.Fatalf("expected LAPS run with stats, got %q (%v)", res.Scheduler, res.LapsStats)
	}
}

// TestRunShardedConformance pins the cross-shard ordering contract at
// the API level: the same StackConfig at Dispatchers=1 and 4 retires
// every packet with zero reordering in both runs.
func TestRunShardedConformance(t *testing.T) {
	run := func(disp int) *laps.RunResult {
		res, err := laps.Run(laps.RunConfig{
			StackConfig: laps.StackConfig{
				Duration: 2 * laps.Millisecond,
				Seed:     11,
				Traffic:  liveTraffic(11),
			},
			Workers:     4,
			Dispatchers: disp,
			Block:       true,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	one, four := run(1), run(4)
	if one.Generated != four.Generated {
		t.Fatalf("arrival sequence diverged: %d vs %d packets", one.Generated, four.Generated)
	}
	for _, r := range []*laps.RunResult{one, four} {
		if r.Live.Processed != r.Live.Dispatched || r.Live.Dropped != 0 {
			t.Fatalf("dispatchers=%d lost packets: %+v", r.Live.Dispatchers, r.Live)
		}
		if r.Live.OutOfOrder != 0 {
			t.Fatalf("dispatchers=%d reordered %d packets", r.Live.Dispatchers, r.Live.OutOfOrder)
		}
	}
}

func TestRunValidation(t *testing.T) {
	if _, err := laps.Run(laps.RunConfig{}); err == nil {
		t.Fatal("empty config accepted")
	}
	if _, err := laps.Run(laps.RunConfig{
		StackConfig: laps.StackConfig{Scheduler: laps.FCFS, Traffic: liveTraffic(1)},
	}); err == nil {
		t.Fatal("FCFS accepted in live mode")
	}
	bad := laps.SimConfig{StackConfig: laps.StackConfig{Traffic: liveTraffic(1)}, Cores: 8}
	if _, err := laps.Run(laps.RunConfig{Workers: 4, Shadow: &bad}); err == nil {
		t.Fatal("shadow mode accepted Workers != Shadow.Cores")
	}
	shadow := laps.SimConfig{StackConfig: laps.StackConfig{Traffic: liveTraffic(1)}, Cores: 4}
	faults := &laps.FaultPlan{Faults: []laps.Fault{{Worker: 1, Kind: laps.FaultKill}}}
	if _, err := laps.Run(laps.RunConfig{Shadow: &shadow, Faults: faults}); err == nil {
		t.Fatal("shadow mode accepted fault injection")
	}
	if _, err := laps.Run(laps.RunConfig{Shadow: &shadow, Dispatchers: 2}); err == nil {
		t.Fatal("shadow mode accepted sharded dispatch")
	}
	if _, err := laps.Run(laps.RunConfig{
		StackConfig: laps.StackConfig{Traffic: liveTraffic(1)},
		Dispatchers: -1,
	}); err == nil {
		t.Fatal("negative Dispatchers accepted")
	}
	if _, err := laps.Run(laps.RunConfig{
		StackConfig: laps.StackConfig{Scheduler: laps.AFS, Traffic: liveTraffic(1)},
		Dispatchers: 2,
	}); err == nil {
		t.Fatal("sharded dispatch accepted a scheduler with no forwarding snapshots")
	}
}

// TestRunTrafficRejectsDuplicateService pins the trafficProfile fix:
// two Traffic entries naming the same service must be rejected, in both
// engines, instead of silently shadowing each other.
func TestRunTrafficRejectsDuplicateService(t *testing.T) {
	dup := []laps.ServiceTraffic{
		trafficFor(laps.SvcIPForward, 1, 1),
		trafficFor(laps.SvcIPForward, 2, 2),
	}
	if _, err := laps.Simulate(laps.SimConfig{
		StackConfig: laps.StackConfig{Traffic: dup},
	}); err == nil {
		t.Fatal("Simulate accepted duplicate service traffic")
	}
	if _, err := laps.Run(laps.RunConfig{
		StackConfig: laps.StackConfig{Traffic: dup},
	}); err == nil {
		t.Fatal("Run accepted duplicate service traffic")
	}
}

func TestRunContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // already cancelled: nothing must be dispatched, nothing hangs
	res, err := laps.Run(laps.RunConfig{
		StackConfig: laps.StackConfig{
			Duration: 2 * laps.Millisecond,
			Traffic:  liveTraffic(7),
		},
		Workers: 2,
		Context: ctx,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Live.Dispatched != 0 {
		t.Fatalf("cancelled run dispatched %d packets", res.Live.Dispatched)
	}
}

func TestRunPacedReplayTakesWallTime(t *testing.T) {
	start := time.Now()
	res, err := laps.Run(laps.RunConfig{
		StackConfig: laps.StackConfig{
			Duration: 4 * laps.Millisecond,
			Seed:     9,
			Traffic:  []laps.ServiceTraffic{trafficFor(laps.SvcIPForward, 1, 9)},
		},
		Workers: 2,
		Pace:    1, // real time: 4 ms of virtual arrivals ≈ 4 ms of wall clock
		Block:   true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 2*time.Millisecond {
		t.Fatalf("paced 4 ms replay finished in %v", elapsed)
	}
	if res.Live.Processed == 0 {
		t.Fatal("nothing processed")
	}
}

// controlPlane filters a recorder down to the scheduler's decision
// events — the sequence the conformance check compares.
func controlPlane(rec *laps.Recorder) []laps.Event {
	var out []laps.Event
	for _, e := range rec.Events() {
		switch e.Kind {
		case laps.EvFlowMigration, laps.EvMapSplit, laps.EvMapMerge,
			laps.EvCoreSteal, laps.EvCorePark, laps.EvCoreReturn,
			laps.EvSurplusMark, laps.EvSurplusUnmark,
			laps.EvAFCPromote, laps.EvAFCDemote, laps.EvAFCInvalidate:
			out = append(out, e)
		}
	}
	return out
}

// TestRunShadowConformance replays the same synthetic trace through the
// simulator alone and through the live runtime in shadow mode, and
// asserts the scheduler-level decisions — every migration, map split
// and AFC promotion, in order, with identical timestamps and operands —
// match exactly. It also pins the live ordering invariant: with fencing
// on, mirroring the decision storm onto real goroutines reorders
// nothing.
func TestRunShadowConformance(t *testing.T) {
	mkCfg := func(rec *laps.Recorder) laps.SimConfig {
		return laps.SimConfig{
			StackConfig: laps.StackConfig{
				Duration: 4 * laps.Millisecond,
				Seed:     42,
				Traffic:  liveTraffic(42),
			},
			Cores: 8,
			Trace: rec,
		}
	}

	recSim := laps.NewRecorder(0)
	simRes, err := laps.Simulate(mkCfg(recSim))
	if err != nil {
		t.Fatal(err)
	}
	recShadow := laps.NewRecorder(0)
	shadowCfg := mkCfg(recShadow)
	runRes, err := laps.Run(laps.RunConfig{Shadow: &shadowCfg})
	if err != nil {
		t.Fatal(err)
	}

	// The scheduler's aggregate decision counters must agree.
	if simRes.LapsStats == nil || runRes.LapsStats == nil {
		t.Fatal("missing LAPS stats")
	}
	if !reflect.DeepEqual(*simRes.LapsStats, *runRes.LapsStats) {
		t.Fatalf("scheduler stats diverged:\n sim: %+v\nlive: %+v",
			*simRes.LapsStats, *runRes.LapsStats)
	}

	// The event-by-event decision sequences must be identical:
	// migrations, splits/merges, steals, AFC activity — same order,
	// same virtual timestamps, same flows and cores.
	evSim, evShadow := controlPlane(recSim), controlPlane(recShadow)
	if len(evSim) == 0 {
		t.Fatal("conformance run produced no control-plane events; widen the workload")
	}
	if len(evSim) != len(evShadow) {
		t.Fatalf("event counts diverged: sim %d, shadow %d", len(evSim), len(evShadow))
	}
	for i := range evSim {
		if evSim[i] != evShadow[i] {
			t.Fatalf("decision %d diverged:\n sim: %+v\nlive: %+v", i, evSim[i], evShadow[i])
		}
	}
	if c := recSim.Count(laps.EvFlowMigration); c == 0 {
		t.Fatal("no migrations in conformance run; the check is vacuous")
	}

	// Every scheduler decision was mirrored onto the live engine, and
	// fencing kept the live data path order-safe through all of them.
	if runRes.Live.Dispatched != simRes.Metrics.Injected {
		t.Fatalf("live saw %d packets, sim injected %d",
			runRes.Live.Dispatched, simRes.Metrics.Injected)
	}
	if runRes.Live.Processed != runRes.Live.Dispatched {
		t.Fatalf("shadow mirror lost packets: %d of %d",
			runRes.Live.Processed, runRes.Live.Dispatched)
	}
	if runRes.Live.OutOfOrder != 0 {
		t.Fatalf("live engine reordered %d packets under fencing", runRes.Live.OutOfOrder)
	}
	if runRes.Sim == nil || runRes.Sim.Metrics.Injected != simRes.Metrics.Injected {
		t.Fatal("shadow result did not carry the embedded simulation")
	}
}

// TestRunShadowDeterministic: two shadow runs of the same config agree
// with each other (the live side is scheduling-noise-free at the
// decision level even though goroutine interleavings differ).
func TestRunShadowDeterministic(t *testing.T) {
	run := func() *laps.RunResult {
		cfg := laps.SimConfig{
			StackConfig: laps.StackConfig{
				Duration: 2 * laps.Millisecond,
				Seed:     17,
				Traffic:  liveTraffic(17),
			},
			Cores: 8,
		}
		res, err := laps.Run(laps.RunConfig{Shadow: &cfg})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if !reflect.DeepEqual(*a.LapsStats, *b.LapsStats) {
		t.Fatalf("shadow runs diverged:\n a: %+v\n b: %+v", *a.LapsStats, *b.LapsStats)
	}
	if a.Live.Dispatched != b.Live.Dispatched {
		t.Fatalf("dispatch counts diverged: %d vs %d", a.Live.Dispatched, b.Live.Dispatched)
	}
}

// TestRunAdminEndpoint drives the embedded admin server through the
// public API: a faulted live run scraped over HTTP mid-flight, with the
// final registry reconciled against the engine's own counters.
func TestRunAdminEndpoint(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()

	// Scrape continuously while the run is live. Pace stretches the 2 ms
	// virtual window to ~200 ms of wall clock, so scrapes land mid-flight
	// and the kill is detected during the run rather than at Stop.
	stop := make(chan struct{})
	type scrape struct {
		metrics int
		healthz int
		degr    bool
	}
	got := make(chan scrape, 1)
	go func() {
		var s scrape
		defer func() { got <- s }()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if resp, err := http.Get("http://" + addr + "/metrics"); err == nil {
				body, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				if resp.StatusCode == 200 && strings.Contains(string(body), "laps_dispatched_total") {
					s.metrics++
				}
			}
			if resp, err := http.Get("http://" + addr + "/healthz"); err == nil {
				body, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				s.healthz++
				if resp.StatusCode == 503 && strings.Contains(string(body), `"degraded"`) {
					s.degr = true
				}
			}
			time.Sleep(time.Millisecond)
		}
	}()

	res, err := laps.Run(laps.RunConfig{
		StackConfig: laps.StackConfig{
			Duration: 2 * laps.Millisecond,
			Seed:     3,
			Traffic:  liveTraffic(3),
		},
		Workers: 4,
		Block:   true,
		Pace:    0.01,
		Faults: &laps.FaultPlan{Faults: []laps.Fault{
			{Worker: 3, After: 800, Kind: laps.FaultKill},
		}},
		DetectWindow: 30 * time.Millisecond,
		HTTPListener: ln,
	})
	close(stop)
	s := <-got
	if err != nil {
		t.Fatal(err)
	}
	if res.AdminAddr != addr {
		t.Fatalf("AdminAddr %q, want listener address %q", res.AdminAddr, addr)
	}
	if s.metrics == 0 || s.healthz == 0 {
		t.Fatalf("no successful mid-run scrapes (metrics=%d healthz=%d)", s.metrics, s.healthz)
	}
	if res.Live.WorkerDeaths > 0 && !s.degr {
		t.Log("note: no degraded /healthz observed before the run ended (timing-dependent)")
	}

	// The run's registry must reconcile exactly with EngineStats.
	if res.Metrics == nil {
		t.Fatal("admin run returned no registry")
	}
	snap := res.Metrics.Snapshot()
	if got := snap["laps_dispatched_total"].(uint64); got != res.Live.Dispatched {
		t.Fatalf("laps_dispatched_total %d != Dispatched %d", got, res.Live.Dispatched)
	}
	if got := snap["laps_processed_total"].(uint64); got != res.Live.Processed {
		t.Fatalf("laps_processed_total %d != Processed %d", got, res.Live.Processed)
	}
	if got := snap["laps_worker_deaths_total"].(uint64); got != res.Live.WorkerDeaths {
		t.Fatalf("laps_worker_deaths_total %d != WorkerDeaths %d", got, res.Live.WorkerDeaths)
	}
	lat := snap["laps_packet_latency_seconds"].(map[string]any)
	if got := lat["count"].(uint64); got != res.Live.Processed {
		t.Fatalf("latency histogram has %d samples, Processed is %d", got, res.Live.Processed)
	}

	// The exposition must be well-formed: every non-comment line is
	// "name value", and the server must be gone once Run returns.
	var buf bytes.Buffer
	if err := res.Metrics.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		if fields := strings.Fields(line); len(fields) != 2 {
			t.Fatalf("malformed exposition line %q", line)
		}
	}
	if _, err := http.Get("http://" + addr + "/metrics"); err == nil {
		t.Fatal("admin server still serving after Run returned")
	}
}

// TestRunShadowRejectsTelemetry pins the mode boundary: shadow mode has
// no live clock worth scraping, so telemetry knobs are a config error.
func TestRunShadowRejectsTelemetry(t *testing.T) {
	if _, err := laps.Run(laps.RunConfig{
		Shadow:   &laps.SimConfig{},
		HTTPAddr: "127.0.0.1:0",
	}); err == nil {
		t.Fatal("shadow run with HTTPAddr did not error")
	}
	if _, err := laps.Run(laps.RunConfig{
		Shadow:  &laps.SimConfig{},
		Metrics: laps.NewMetricsRegistry(),
	}); err == nil {
		t.Fatal("shadow run with Metrics did not error")
	}
}
