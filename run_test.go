package laps_test

import (
	"context"
	"reflect"
	"testing"
	"time"

	"laps"
)

// liveTraffic is a two-service load that keeps LAPS busy enough to
// migrate, split maps and promote AFC entries within a few virtual ms.
func liveTraffic(seed uint64) []laps.ServiceTraffic {
	return []laps.ServiceTraffic{
		trafficFor(laps.SvcIPForward, 3, seed),
		trafficFor(laps.SvcVPNOut, 1.5, seed+101),
	}
}

func TestRunLiveSmoke(t *testing.T) {
	res, err := laps.Run(laps.RunConfig{
		Workers:  4,
		Duration: 2 * laps.Millisecond,
		Seed:     3,
		Block:    true,
		Traffic:  liveTraffic(3),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Generated == 0 {
		t.Fatal("no traffic generated")
	}
	if res.Live.Dispatched != res.Generated {
		t.Fatalf("dispatched %d != generated %d", res.Live.Dispatched, res.Generated)
	}
	if res.Live.Processed != res.Live.Dispatched {
		t.Fatalf("block policy lost packets: processed %d of %d",
			res.Live.Processed, res.Live.Dispatched)
	}
	if res.Live.OutOfOrder != 0 {
		t.Fatalf("fencing let %d packets reorder", res.Live.OutOfOrder)
	}
	if res.Scheduler != "laps" || res.LapsStats == nil {
		t.Fatalf("expected LAPS run with stats, got %q (%v)", res.Scheduler, res.LapsStats)
	}
}

func TestRunLiveTelemetry(t *testing.T) {
	rec := laps.NewRecorder(0)
	res, err := laps.Run(laps.RunConfig{
		Workers:         4,
		Duration:        2 * laps.Millisecond,
		Seed:            5,
		Block:           true,
		Traffic:         liveTraffic(5),
		Trace:           rec,
		MetricsInterval: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rec.Total() == 0 {
		t.Fatal("live LAPS run emitted no control-plane events")
	}
	if res.Live.Series == nil {
		t.Fatal("metrics interval set but no series")
	}
}

// TestRunLiveWithFaults drives fault injection through the public API:
// a stall past the window plus a kill, under backpressure — nothing may
// drop or reorder, and the recovery counters must surface in RunStats.
func TestRunLiveWithFaults(t *testing.T) {
	res, err := laps.Run(laps.RunConfig{
		Workers:  4,
		Duration: 2 * laps.Millisecond,
		Seed:     3,
		Block:    true,
		Traffic:  liveTraffic(3),
		Faults: &laps.FaultPlan{Faults: []laps.Fault{
			{Worker: 1, After: 500, Kind: laps.FaultStall, Duration: 600 * time.Millisecond},
			{Worker: 3, After: 800, Kind: laps.FaultKill},
		}},
		DetectWindow: 60 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Live.Processed != res.Live.Dispatched || res.Live.Dropped != 0 {
		t.Fatalf("faulted block run lost packets: processed %d of %d, dropped %d",
			res.Live.Processed, res.Live.Dispatched, res.Live.Dropped)
	}
	if res.Live.OutOfOrder != 0 {
		t.Fatalf("recovery reordered %d packets", res.Live.OutOfOrder)
	}
	if res.Live.WorkerDeaths == 0 {
		t.Fatal("injected kill never quarantined")
	}
	if !res.Live.Workers[3].Dead {
		t.Fatal("killed worker 3 not reported dead")
	}
}

func TestRunValidation(t *testing.T) {
	if _, err := laps.Run(laps.RunConfig{}); err == nil {
		t.Fatal("empty config accepted")
	}
	if _, err := laps.Run(laps.RunConfig{
		Scheduler: laps.FCFS, Traffic: liveTraffic(1),
	}); err == nil {
		t.Fatal("FCFS accepted in live mode")
	}
	bad := laps.SimConfig{Cores: 8, Traffic: liveTraffic(1)}
	if _, err := laps.Run(laps.RunConfig{Workers: 4, Shadow: &bad}); err == nil {
		t.Fatal("shadow mode accepted Workers != Shadow.Cores")
	}
	shadow := laps.SimConfig{Cores: 4, Traffic: liveTraffic(1)}
	faults := &laps.FaultPlan{Faults: []laps.Fault{{Worker: 1, Kind: laps.FaultKill}}}
	if _, err := laps.Run(laps.RunConfig{Shadow: &shadow, Faults: faults}); err == nil {
		t.Fatal("shadow mode accepted fault injection")
	}
}

func TestRunContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // already cancelled: nothing must be dispatched, nothing hangs
	res, err := laps.Run(laps.RunConfig{
		Workers:  2,
		Duration: 2 * laps.Millisecond,
		Traffic:  liveTraffic(7),
		Context:  ctx,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Live.Dispatched != 0 {
		t.Fatalf("cancelled run dispatched %d packets", res.Live.Dispatched)
	}
}

func TestRunPacedReplayTakesWallTime(t *testing.T) {
	start := time.Now()
	res, err := laps.Run(laps.RunConfig{
		Workers:  2,
		Duration: 4 * laps.Millisecond,
		Seed:     9,
		Pace:     1, // real time: 4 ms of virtual arrivals ≈ 4 ms of wall clock
		Block:    true,
		Traffic:  []laps.ServiceTraffic{trafficFor(laps.SvcIPForward, 1, 9)},
	})
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 2*time.Millisecond {
		t.Fatalf("paced 4 ms replay finished in %v", elapsed)
	}
	if res.Live.Processed == 0 {
		t.Fatal("nothing processed")
	}
}

// controlPlane filters a recorder down to the scheduler's decision
// events — the sequence the conformance check compares.
func controlPlane(rec *laps.Recorder) []laps.Event {
	var out []laps.Event
	for _, e := range rec.Events() {
		switch e.Kind {
		case laps.EvFlowMigration, laps.EvMapSplit, laps.EvMapMerge,
			laps.EvCoreSteal, laps.EvCorePark, laps.EvCoreReturn,
			laps.EvSurplusMark, laps.EvSurplusUnmark,
			laps.EvAFCPromote, laps.EvAFCDemote, laps.EvAFCInvalidate:
			out = append(out, e)
		}
	}
	return out
}

// TestRunShadowConformance replays the same synthetic trace through the
// simulator alone and through the live runtime in shadow mode, and
// asserts the scheduler-level decisions — every migration, map split
// and AFC promotion, in order, with identical timestamps and operands —
// match exactly. It also pins the live ordering invariant: with fencing
// on, mirroring the decision storm onto real goroutines reorders
// nothing.
func TestRunShadowConformance(t *testing.T) {
	mkCfg := func(rec *laps.Recorder) laps.SimConfig {
		return laps.SimConfig{
			Cores:    8,
			Duration: 4 * laps.Millisecond,
			Seed:     42,
			Traffic:  liveTraffic(42),
			Trace:    rec,
		}
	}

	recSim := laps.NewRecorder(0)
	simRes, err := laps.Simulate(mkCfg(recSim))
	if err != nil {
		t.Fatal(err)
	}
	recShadow := laps.NewRecorder(0)
	shadowCfg := mkCfg(recShadow)
	runRes, err := laps.Run(laps.RunConfig{Shadow: &shadowCfg})
	if err != nil {
		t.Fatal(err)
	}

	// The scheduler's aggregate decision counters must agree.
	if simRes.LapsStats == nil || runRes.LapsStats == nil {
		t.Fatal("missing LAPS stats")
	}
	if !reflect.DeepEqual(*simRes.LapsStats, *runRes.LapsStats) {
		t.Fatalf("scheduler stats diverged:\n sim: %+v\nlive: %+v",
			*simRes.LapsStats, *runRes.LapsStats)
	}

	// The event-by-event decision sequences must be identical:
	// migrations, splits/merges, steals, AFC activity — same order,
	// same virtual timestamps, same flows and cores.
	evSim, evShadow := controlPlane(recSim), controlPlane(recShadow)
	if len(evSim) == 0 {
		t.Fatal("conformance run produced no control-plane events; widen the workload")
	}
	if len(evSim) != len(evShadow) {
		t.Fatalf("event counts diverged: sim %d, shadow %d", len(evSim), len(evShadow))
	}
	for i := range evSim {
		if evSim[i] != evShadow[i] {
			t.Fatalf("decision %d diverged:\n sim: %+v\nlive: %+v", i, evSim[i], evShadow[i])
		}
	}
	if c := recSim.Count(laps.EvFlowMigration); c == 0 {
		t.Fatal("no migrations in conformance run; the check is vacuous")
	}

	// Every scheduler decision was mirrored onto the live engine, and
	// fencing kept the live data path order-safe through all of them.
	if runRes.Live.Dispatched != simRes.Metrics.Injected {
		t.Fatalf("live saw %d packets, sim injected %d",
			runRes.Live.Dispatched, simRes.Metrics.Injected)
	}
	if runRes.Live.Processed != runRes.Live.Dispatched {
		t.Fatalf("shadow mirror lost packets: %d of %d",
			runRes.Live.Processed, runRes.Live.Dispatched)
	}
	if runRes.Live.OutOfOrder != 0 {
		t.Fatalf("live engine reordered %d packets under fencing", runRes.Live.OutOfOrder)
	}
	if runRes.Sim == nil || runRes.Sim.Metrics.Injected != simRes.Metrics.Injected {
		t.Fatal("shadow result did not carry the embedded simulation")
	}
}

// TestRunShadowDeterministic: two shadow runs of the same config agree
// with each other (the live side is scheduling-noise-free at the
// decision level even though goroutine interleavings differ).
func TestRunShadowDeterministic(t *testing.T) {
	run := func() *laps.RunResult {
		cfg := laps.SimConfig{
			Cores:    8,
			Duration: 2 * laps.Millisecond,
			Seed:     17,
			Traffic:  liveTraffic(17),
		}
		res, err := laps.Run(laps.RunConfig{Shadow: &cfg})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if !reflect.DeepEqual(*a.LapsStats, *b.LapsStats) {
		t.Fatalf("shadow runs diverged:\n a: %+v\n b: %+v", *a.LapsStats, *b.LapsStats)
	}
	if a.Live.Dispatched != b.Live.Dispatched {
		t.Fatalf("dispatch counts diverged: %d vs %d", a.Live.Dispatched, b.Live.Dispatched)
	}
}
