// Package laps is a library-level reproduction of "Flow Migration on
// Multicore Network Processors: Load Balancing While Minimizing Packet
// Reordering" (Iqbal et al., ICPP 2013).
//
// It provides, as reusable components:
//
//   - the LAPS packet scheduler (NewScheduler): per-service map tables,
//     incremental (linear) hashing, migration tables, and dynamic core
//     allocation;
//   - the Aggressive Flow Detector (NewDetector): a two-level LFU cache
//     structure that identifies heavy-hitter flows at line rate without
//     per-flow state — usable standalone for heavy-hitter detection;
//   - a deterministic network-processor simulator (Simulate) with the
//     paper's delay model, baselines (FCFS, hash-only, AFS, Shi-style
//     top-k oracle) and metrics (drops, reordering, cold caches,
//     migrations);
//   - synthetic trace sources with realistic elephant/mice structure,
//     plus pcap I/O (CAIDATrace/AucklandTrace/NewTrace, ReadPcap);
//   - the full experiment harness regenerating every table and figure of
//     the paper's evaluation (RunExperiment).
//
// See examples/ for runnable entry points and DESIGN.md for the system
// inventory.
package laps

import (
	"fmt"
	"io"

	"laps/internal/afd"
	"laps/internal/core"
	"laps/internal/exp"
	"laps/internal/npsim"
	"laps/internal/obs"
	"laps/internal/obs/telemetry"
	"laps/internal/packet"
	"laps/internal/power"
	"laps/internal/rob"
	"laps/internal/sim"
	"laps/internal/stats"
	"laps/internal/trace"
	"laps/internal/traffic"
)

// Re-exported foundation types. Aliases keep the internal packages as
// the single source of truth while giving users one import path.
type (
	// Time is simulated time in nanoseconds.
	Time = sim.Time
	// FlowKey is the 5-tuple flow identifier.
	FlowKey = packet.FlowKey
	// Packet is the descriptor the scheduler places onto cores.
	Packet = packet.Packet
	// ServiceID names a router service (a path through the task graph).
	ServiceID = packet.ServiceID

	// Detector is the Aggressive Flow Detector (paper §III-F).
	Detector = afd.Detector
	// DetectorConfig parameterises a Detector.
	DetectorConfig = afd.Config
	// DetectorStats are the detector's activity counters.
	DetectorStats = afd.Stats
	// ExactCounter keeps exact per-flow counts (ground truth / oracle).
	ExactCounter = afd.ExactCounter

	// Scheduler is the LAPS scheduler (paper §III).
	Scheduler = core.LAPS
	// SchedulerConfig parameterises a Scheduler.
	SchedulerConfig = core.Config
	// SchedulerStats are LAPS's control-plane counters.
	SchedulerStats = core.Stats

	// CoreScheduler is the interface any packet scheduler implements to
	// drive the simulator: it picks a core for each arriving packet.
	CoreScheduler = npsim.Scheduler
	// SystemView is the read-only state a scheduler may consult.
	SystemView = npsim.View
	// Metrics aggregates a simulation's results.
	Metrics = npsim.Metrics

	// TraceSource yields packet headers in arrival order.
	TraceSource = trace.Source
	// TraceConfig parameterises a synthetic trace.
	TraceConfig = trace.SynthConfig
	// TraceRecord is one packet-header observation.
	TraceRecord = trace.Record
	// TimedRecord is a trace record with a timestamp (pcap I/O).
	TimedRecord = trace.TimedRecord

	// RateParams are the Holt-Winters traffic coefficients (eq. 1).
	RateParams = traffic.RateParams
	// ChurnConfig parameterises a flow-churn trace source: a bounded
	// live population of short flows with unbounded distinct-flow count
	// (the FlowBudget stress family; see docs/SCALE.md).
	ChurnConfig = traffic.ChurnConfig
	// LifetimeDist selects a churn source's flow-lifetime distribution.
	LifetimeDist = traffic.LifetimeDist

	// CoreReport is one core's activity snapshot (busy time, idle
	// intervals) for energy and balance analysis.
	CoreReport = npsim.CoreReport
	// PowerModel is the three-state (active/idle/gated) core power model.
	PowerModel = power.Model
	// PowerEstimate is a system-wide energy result.
	PowerEstimate = power.Estimate
	// ReorderStats are an egress re-order buffer's counters.
	ReorderStats = rob.Stats

	// Options are the experiment-harness knobs.
	Options = exp.Options
	// Table is a rendered experiment result.
	Table = exp.Table

	// Recorder is the ring-buffered telemetry event recorder. A nil
	// *Recorder is a safe no-op, so instrumentation can stay wired in
	// permanently and cost one branch when tracing is off.
	Recorder = obs.Recorder
	// Event is one recorded control-plane event (migration, map split,
	// core steal, drop, ...).
	Event = obs.Event
	// EventKind classifies telemetry events.
	EventKind = obs.Kind
	// Sink consumes drained telemetry events (JSONL, Chrome trace).
	Sink = obs.Sink
	// Series is the columnar time series the metrics sampler produces.
	Series = stats.Series

	// MetricsRegistry collects the live runtime's telemetry — lock-free
	// latency/reorder/fence/recovery histograms, counters, per-worker
	// gauges — recorded during a Run and aggregated only at scrape time.
	// Pass one in RunConfig.Metrics (or set RunConfig.HTTPAddr and let
	// Run build one); read it with WritePrometheus or Snapshot. See
	// docs/OBSERVABILITY.md.
	MetricsRegistry = telemetry.Registry
	// MetricsSnapshot is one aggregated histogram state (counts, sum,
	// max) read from a MetricsRegistry.
	MetricsSnapshot = telemetry.HistSnapshot
	// WorkerHealth is one worker's liveness as reported by /healthz.
	WorkerHealth = telemetry.WorkerState

	// MemoryClass selects how flow state behaves past
	// StackConfig.FlowBudget: exact, sketch-bounded, or auto-degrading.
	MemoryClass = npsim.MemoryClass
)

// Flow-state memory regimes for StackConfig.Memory (docs/SCALE.md).
const (
	// MemoryAuto (the zero value) starts exact and degrades to bounded
	// sketch/hash-bucket state when live flows exceed FlowBudget.
	MemoryAuto = npsim.MemoryAuto
	// MemoryExact never degrades; FlowBudget becomes a hard cap on
	// concurrently tracked flows (oldest evicted first).
	MemoryExact = npsim.MemoryExact
	// MemorySketch uses bounded structures from the start.
	MemorySketch = npsim.MemorySketch
)

// ParseMemoryClass parses "auto", "exact" or "sketch" (CLI flags).
func ParseMemoryClass(s string) (MemoryClass, error) { return npsim.ParseMemoryClass(s) }

// Telemetry event kinds (see docs/OBSERVABILITY.md).
const (
	EvFlowMigration = obs.EvFlowMigration
	EvMapSplit      = obs.EvMapSplit
	EvMapMerge      = obs.EvMapMerge
	EvCoreSteal     = obs.EvCoreSteal
	EvCorePark      = obs.EvCorePark
	EvCoreReturn    = obs.EvCoreReturn
	EvSurplusMark   = obs.EvSurplusMark
	EvSurplusUnmark = obs.EvSurplusUnmark
	EvAFCPromote    = obs.EvAFCPromote
	EvAFCDemote     = obs.EvAFCDemote
	EvAFCInvalidate = obs.EvAFCInvalidate
	EvOOODepart     = obs.EvOOODepart
	EvDrop          = obs.EvDrop
	// Live-runtime fault events (docs/RUNTIME.md).
	EvWorkerStall = obs.EvWorkerStall
	EvWorkerDead  = obs.EvWorkerDead
	EvRecovery    = obs.EvRecovery
	// Sharded data-plane events (Dispatchers > 0).
	EvSnapshotPublish = obs.EvSnapshotPublish
	// Span events: start/end pairs bracketing drain fences and worker
	// recoveries; Chrome trace sinks render them as durations.
	EvFenceStart    = obs.EvFenceStart
	EvFenceEnd      = obs.EvFenceEnd
	EvRecoveryStart = obs.EvRecoveryStart
	EvRecoveryEnd   = obs.EvRecoveryEnd
)

// NewMetricsRegistry builds an empty live-telemetry registry for
// RunConfig.Metrics. Build a fresh registry per run: each Run
// registers its engine's metric families, so a reused registry would
// expose duplicate series mixing two runs' counts.
func NewMetricsRegistry() *MetricsRegistry { return telemetry.NewRegistry() }

// NewRecorder builds a telemetry recorder holding up to capacity events
// (<= 0 selects the 65536-event default). Pass it to SimConfig.Trace or
// a Scheduler/Detector SetRecorder, then Drain into a Sink.
func NewRecorder(capacity int) *Recorder { return obs.NewRecorder(capacity) }

// NewJSONLSink writes drained events as one JSON object per line.
func NewJSONLSink(w io.Writer) Sink { return obs.NewJSONLSink(w) }

// NewChromeTraceSink writes drained events in Chrome's trace-event JSON
// format, loadable in chrome://tracing or https://ui.perfetto.dev.
func NewChromeTraceSink(w io.Writer) Sink { return obs.NewChromeTraceSink(w) }

// Time unit constants.
const (
	Nanosecond  = sim.Nanosecond
	Microsecond = sim.Microsecond
	Millisecond = sim.Millisecond
	Second      = sim.Second
)

// The paper's four services (task-graph paths, Fig 5).
const (
	SvcVPNOut      = packet.SvcVPNOut
	SvcIPForward   = packet.SvcIPForward
	SvcMalwareScan = packet.SvcMalwareScan
	SvcVPNIn       = packet.SvcVPNIn
	NumServices    = packet.NumServices
)

// NewDetector builds an Aggressive Flow Detector. Zero-valued config
// fields take the paper's defaults (16-entry AFC, 512-entry annex).
func NewDetector(cfg DetectorConfig) *Detector { return afd.New(cfg) }

// NewExactCounter builds an exact per-flow counter for ground truth.
func NewExactCounter() *ExactCounter { return afd.NewExactCounter() }

// EvaluateDetector scores detected flows against the true top-k.
func EvaluateDetector(detected []FlowKey, truth *ExactCounter, k int) afd.Accuracy {
	return afd.Evaluate(detected, truth, k)
}

// NewScheduler builds a LAPS scheduler.
func NewScheduler(cfg SchedulerConfig) *Scheduler { return core.New(cfg) }

// NewTrace builds a synthetic trace source.
func NewTrace(cfg TraceConfig) TraceSource { return trace.NewSynthetic(cfg) }

// Flow-lifetime distributions for ChurnConfig.Lifetime.
const (
	LifetimeGeometric = traffic.LifetimeGeometric
	LifetimePareto    = traffic.LifetimePareto
	LifetimeFixed     = traffic.LifetimeFixed
)

// NewChurnTrace builds a flow-churn trace source: every packet belongs
// to one of ChurnConfig.Concurrent live flows, and finished flows are
// replaced by brand-new ones, so a long run visits far more distinct
// flows than are ever live. Pair it with StackConfig.FlowBudget to
// exercise the bounded-memory path (docs/SCALE.md).
func NewChurnTrace(cfg ChurnConfig) TraceSource { return traffic.NewChurn(cfg) }

// ChurnTrace returns the i-th million-flow churn preset (the
// BENCH_scale.json workload).
func ChurnTrace(i int) TraceSource { return traffic.MillionFlowChurn(i) }

// CAIDATrace returns the i-th CAIDA-like synthetic trace preset.
func CAIDATrace(i int) TraceSource { return trace.CAIDALike(i) }

// AucklandTrace returns the i-th Auckland-like synthetic trace preset.
func AucklandTrace(i int) TraceSource { return trace.AucklandLike(i) }

// ReadPcap parses a classic pcap capture into timed records.
func ReadPcap(r io.Reader) ([]TimedRecord, error) { return trace.ReadPcap(r) }

// WritePcap serialises records as a classic pcap capture.
func WritePcap(w io.Writer, recs []TimedRecord) error { return trace.WritePcap(w, recs) }

// ReplayTrace wraps records as a TraceSource, optionally looping.
func ReplayTrace(name string, recs []TraceRecord, loop bool) TraceSource {
	return trace.NewReplay(name, recs, loop)
}

// DefaultPowerModel returns a plausible embedded-IOP power model.
func DefaultPowerModel() PowerModel { return power.DefaultModel() }

// AnalyzePower integrates a power model over a run's per-core reports.
func AnalyzePower(cores []CoreReport, span Time, m PowerModel) PowerEstimate {
	return power.Analyze(cores, span, m)
}

// RunExperiment executes one named paper experiment ("fig7", "fig8a",
// ...). Experiments() lists the available names.
func RunExperiment(name string, opts Options) ([]Table, error) {
	return exp.Run(name, opts)
}

// Experiments returns the available experiment names.
func Experiments() []string { return exp.Names() }

// SchedulerKind selects a built-in scheduler for Simulate.
type SchedulerKind string

// Built-in schedulers.
const (
	LAPS     SchedulerKind = "laps"      // the paper's scheduler
	FCFS     SchedulerKind = "fcfs"      // shared-queue first-come-first-served
	AFS      SchedulerKind = "afs"       // Dittmann's arbitrary flow shift
	HashOnly SchedulerKind = "hash-only" // static CRC16, no migration
	Oracle   SchedulerKind = "oracle"    // Shi-style exact top-16 migration
)

// ServiceTraffic describes one service's offered load for Simulate.
type ServiceTraffic struct {
	Service ServiceID
	Params  RateParams
	Trace   TraceSource
}

// StackConfig is the scheduler-and-traffic vocabulary shared by both
// execution engines. SimConfig (the discrete-event simulator) and
// RunConfig (the live goroutine runtime) embed it, so the two entry
// points consume identical knobs and cannot drift: a Simulate and a
// Run built from the same StackConfig see the same scheduler state and
// the exact same packet sequence.
type StackConfig struct {
	// Scheduler picks a built-in scheduler; ignored when Custom is set.
	// Empty means LAPS.
	Scheduler SchedulerKind
	// Custom plugs in any CoreScheduler implementation.
	Custom CoreScheduler
	// Consolidate enables LAPS's power-aware core parking: calm
	// services fold their traffic onto fewer cores so the rest idle in
	// long, gateable blocks (companion-work behaviour, paper refs
	// [20],[29]). Only meaningful with Scheduler == LAPS.
	Consolidate bool
	// Traffic lists the offered load per service (at least one entry).
	Traffic []ServiceTraffic
	// Duration is the traffic window in virtual time; 0 means 50 ms.
	Duration Time
	// TimeCompression maps virtual seconds to rate-model seconds; 0
	// means 1.
	TimeCompression float64
	// CBRArrivals uses paced (±50% jitter) instead of Poisson arrivals.
	CBRArrivals bool
	// Seed drives all randomness (arrivals and the scheduler's AFD);
	// 0 means 1.
	Seed uint64
	// FlowBudget bounds how many flows may hold exact per-flow state
	// (reorder watermarks, fence records, affinity entries) at once; 0
	// means unbounded. What happens past the budget is Memory's call.
	// See docs/SCALE.md.
	FlowBudget int
	// Memory selects the flow-state regime: MemoryAuto (the zero value)
	// keeps exact state and degrades to sketch/hash-bucket state only
	// when FlowBudget is exceeded; MemoryExact never degrades (the
	// budget becomes a hard cap on tracked flows); MemorySketch runs
	// bounded from the start. See docs/SCALE.md for the accuracy bounds.
	Memory MemoryClass
}

// SimConfig describes a custom simulation for Simulate. The embedded
// StackConfig carries the scheduler/traffic knobs shared with Run.
type SimConfig struct {
	StackConfig

	// Cores is the processor size; 0 means 16 (Table III).
	Cores int
	// QueueCap is the per-core descriptor queue; 0 means 32.
	QueueCap int
	// RestoreOrder attaches an egress re-order buffer (order
	// *restoration*, the alternative the paper contrasts in related
	// work [35]) and reports its cost in SimResult.Restored.
	RestoreOrder bool
	// Trace, when non-nil, records control-plane telemetry events
	// (flow migrations, map splits/merges, core steals, AFC activity,
	// drops, out-of-order departures) during the run. Drain it into a
	// Sink afterwards.
	Trace *Recorder
	// MetricsInterval, when positive, samples per-core queue depths,
	// drop and reordering rates — plus per-service core counts and AFD
	// hit rates under LAPS — every interval of simulated time into
	// SimResult.Series.
	MetricsInterval Time
}

// SimResult is the outcome of Simulate.
type SimResult struct {
	// Metrics are the simulator's aggregate counters.
	Metrics Metrics
	// Generated is the number of packets offered.
	Generated uint64
	// Duration is the traffic window that was simulated.
	Duration Time
	// Scheduler names the scheduler that ran.
	Scheduler string
	// LapsStats is non-nil when the LAPS scheduler ran.
	LapsStats *SchedulerStats
	// Cores are per-core activity reports (for AnalyzePower etc.).
	Cores []CoreReport
	// Restored is non-nil when RestoreOrder was set: the re-order
	// buffer's statistics plus the out-of-order count *after*
	// restoration.
	Restored *RestoredOrder
	// Series is non-nil when MetricsInterval was set: the sampled
	// telemetry time series (WriteCSV renders it).
	Series *Series
}

// RestoredOrder reports what egress order restoration cost and achieved.
type RestoredOrder struct {
	// OutOfOrderAfter counts packets still out of order at final egress.
	OutOfOrderAfter uint64
	// Buffer are the re-order buffer's internal counters.
	Buffer ReorderStats
}

// trafficProfile validates a per-service traffic list and returns the
// number of service-ID slots in use plus the set of active services.
func trafficProfile(tr []ServiceTraffic) (services int, active map[ServiceID]bool, err error) {
	if len(tr) == 0 {
		return 0, nil, fmt.Errorf("laps: need at least one Traffic entry")
	}
	active = map[ServiceID]bool{}
	for _, t := range tr {
		if int(t.Service) >= services {
			services = int(t.Service) + 1
		}
		if t.Trace == nil {
			return 0, nil, fmt.Errorf("laps: service %v has no trace source", t.Service)
		}
		if active[t.Service] {
			return 0, nil, fmt.Errorf("laps: duplicate Traffic entry for service %v; merge the two sources or use distinct service IDs", t.Service)
		}
		active[t.Service] = true
	}
	if services > packet.NumServices {
		return 0, nil, fmt.Errorf("laps: service IDs must be < %d", packet.NumServices)
	}
	return services, active, nil
}

// buildScheduler constructs the configured scheduler over the active
// services. Both execution engines — Simulate and Run — build their
// scheduler here, so a live run and a simulation with the same knobs and
// seed get byte-identical scheduler state. sharedQueue is true for
// FCFS, which has no per-core scheduler at all (the simulator models it
// with a single shared queue; the live runtime cannot).
func buildScheduler(kind SchedulerKind, custom CoreScheduler, cores int, consolidate bool, seed uint64, services int, active map[ServiceID]bool) (scheduler npsim.Scheduler, sharedQueue bool, err error) {
	switch {
	case custom != nil:
		return custom, false, nil
	case kind == LAPS:
		// Build LAPS over the *active* services only, remapping sparse
		// service IDs onto a compact range, so traffic-less services do
		// not hold cores.
		activeN := len(active)
		if cores < activeN {
			return nil, false, fmt.Errorf("laps: %d cores cannot host %d services", cores, activeN)
		}
		var remap [packet.NumServices]ServiceID
		next := ServiceID(0)
		for svc := 0; svc < services; svc++ {
			if active[ServiceID(svc)] {
				remap[svc] = next
				next++
			}
		}
		l := core.New(core.Config{
			TotalCores:  cores,
			Services:    activeN,
			Consolidate: consolidate,
			AFD:         afd.Config{Seed: seed},
		})
		if activeN == services {
			return l, false, nil
		}
		return &remapScheduler{inner: l, remap: remap}, false, nil
	case kind == FCFS:
		return nil, true, nil
	case kind == AFS:
		return newAFS(), false, nil
	case kind == HashOnly:
		return newHashOnly(), false, nil
	case kind == Oracle:
		return newOracle(16), false, nil
	default:
		return nil, false, fmt.Errorf("laps: unknown scheduler %q", kind)
	}
}

// Simulate builds the full stack — traffic generator, scheduler,
// processor model — runs it to completion and returns the metrics.
func Simulate(cfg SimConfig) (*SimResult, error) {
	if cfg.Cores == 0 {
		cfg.Cores = 16
	}
	if cfg.Duration == 0 {
		cfg.Duration = 50 * Millisecond
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.Scheduler == "" {
		cfg.Scheduler = LAPS
	}

	sysCfg := npsim.DefaultConfig()
	sysCfg.NumCores = cfg.Cores
	if cfg.QueueCap > 0 {
		sysCfg.QueueCap = cfg.QueueCap
	}
	sysCfg.FlowBudget = cfg.FlowBudget
	sysCfg.Memory = cfg.Memory

	services, active, err := trafficProfile(cfg.Traffic)
	if err != nil {
		return nil, err
	}
	scheduler, sharedQueue, err := buildScheduler(cfg.Scheduler, cfg.Custom,
		cfg.Cores, cfg.Consolidate, cfg.Seed, services, active)
	if err != nil {
		return nil, err
	}
	sysCfg.SharedQueue = sharedQueue

	eng := sim.NewEngine()
	sys := npsim.New(eng, sysCfg, scheduler)
	if cfg.Trace != nil {
		sys.SetRecorder(cfg.Trace)
	}
	var sampler *obs.Sampler
	if cfg.MetricsInterval > 0 {
		probes := sys.Probes()
		if l := lapsOf(scheduler); l != nil {
			probes = append(probes, l.Probes(sys)...)
		}
		sampler = obs.NewSampler(cfg.MetricsInterval, probes...)
		sampler.Schedule(eng, cfg.Duration)
	}

	var tracker *npsim.ReorderTracker
	var buf *rob.Buffer
	if cfg.RestoreOrder {
		tracker = npsim.NewTracker(npsim.TrackerConfig{
			FlowBudget: cfg.FlowBudget, Memory: cfg.Memory,
		})
		buf = rob.New(eng, rob.Config{}, func(p *packet.Packet) { tracker.Record(p) })
		sys.OnDepart = buf.Push
	}

	var sources []traffic.ServiceSource
	for _, tr := range cfg.Traffic {
		sources = append(sources, traffic.ServiceSource{
			Service: tr.Service, Params: tr.Params, Trace: tr.Trace,
		})
	}
	arrivals := traffic.Poisson
	if cfg.CBRArrivals {
		arrivals = traffic.CBR
	}
	gen := traffic.NewGenerator(eng, traffic.Config{
		Sources:         sources,
		Duration:        cfg.Duration,
		TimeCompression: cfg.TimeCompression,
		Arrivals:        arrivals,
		Seed:            cfg.Seed,
	}, sys.Inject)
	gen.Start()
	eng.Run()
	if buf != nil {
		buf.Flush()
	}

	res := &SimResult{
		Metrics:   *sys.Metrics(),
		Generated: gen.Generated(),
		Duration:  cfg.Duration,
		Cores:     sys.CoreReports(),
	}
	if buf != nil {
		res.Restored = &RestoredOrder{
			OutOfOrderAfter: tracker.OutOfOrder(),
			Buffer:          buf.Stats(),
		}
	}
	if sampler != nil {
		res.Series = sampler.Series()
	}
	if scheduler != nil {
		res.Scheduler = scheduler.Name()
	} else {
		res.Scheduler = "fcfs"
	}
	if l := lapsOf(scheduler); l != nil {
		st := l.Stats()
		res.LapsStats = &st
	}
	return res, nil
}

// remapScheduler translates sparse service IDs onto the compact range a
// LAPS instance was built for, leaving the packet seen by the simulator
// (and its delay model) untouched.
type remapScheduler struct {
	inner npsim.Scheduler
	remap [packet.NumServices]ServiceID
}

// lapsOf unwraps a scheduler (possibly remap- or mirror-wrapped) to its
// LAPS core, or nil if the scheduler is not LAPS.
func lapsOf(s npsim.Scheduler) *core.LAPS {
	for {
		switch w := s.(type) {
		case *remapScheduler:
			s = w.inner
		case *mirrorScheduler:
			s = w.inner
		default:
			l, _ := s.(*core.LAPS)
			return l
		}
	}
}

// Name identifies the wrapped scheduler.
func (r *remapScheduler) Name() string { return r.inner.Name() }

// SetRecorder forwards telemetry wiring to the wrapped scheduler.
func (r *remapScheduler) SetRecorder(rec *obs.Recorder) {
	if rs, ok := r.inner.(npsim.RecorderSetter); ok {
		rs.SetRecorder(rec)
	}
}

// Target forwards to the wrapped scheduler with the remapped service ID.
func (r *remapScheduler) Target(p *packet.Packet, v npsim.View) int {
	q := *p
	q.Service = r.remap[p.Service]
	return r.inner.Target(&q, v)
}

// Generation forwards the wrapped scheduler's snapshot generation, so a
// remapped LAPS still qualifies as an npsim.SnapshotProvider for the
// sharded live data plane.
func (r *remapScheduler) Generation() uint64 {
	if sp, ok := r.inner.(npsim.SnapshotProvider); ok {
		return sp.Generation()
	}
	return 0
}

// Snapshot wraps the inner scheduler's forwarding view so lookups see
// remapped service IDs, mirroring what Target does on the live path.
func (r *remapScheduler) Snapshot(now sim.Time) npsim.Forwarder {
	sp, ok := r.inner.(npsim.SnapshotProvider)
	if !ok {
		return nil
	}
	return &remapForwarder{inner: sp.Snapshot(now), remap: r.remap}
}

// remapForwarder is the data-plane twin of remapScheduler: a frozen
// forwarding view that remaps sparse service IDs before each lookup.
type remapForwarder struct {
	inner npsim.Forwarder
	remap [packet.NumServices]ServiceID
}

// Forward resolves the packet against the wrapped view under its
// compact service ID.
func (r *remapForwarder) Forward(p *packet.Packet) int {
	q := *p
	q.Service = r.remap[p.Service]
	return r.inner.Forward(&q)
}
