// Command afdtool evaluates the Aggressive Flow Detector against exact
// per-flow counts, on a pcap capture or a built-in synthetic preset.
//
// Usage:
//
//	afdtool -pcap trace.pcap -annex 512
//	afdtool -preset caida -packets 400000 -annex 1024 -sample 0.001
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"laps"
)

func main() {
	var (
		pcapPath = flag.String("pcap", "", "pcap capture to analyse")
		preset   = flag.String("preset", "caida", "synthetic preset when no pcap: caida or auckland")
		idx      = flag.Int("i", 1, "preset instance index")
		packets  = flag.Int("packets", 400000, "packets to stream (presets; pcaps use their length)")
		afcSize  = flag.Int("afc", 16, "AFC entries (the top-k being detected)")
		annex    = flag.Int("annex", 512, "annex cache entries")
		thresh   = flag.Uint64("threshold", 0, "promotion threshold (0: default)")
		sample   = flag.Float64("sample", 1, "packet sampling probability (Fig 8c)")
		policy   = flag.String("policy", "lfu", "replacement policy: lfu or lru")
		seed     = flag.Uint64("seed", 1, "detector seed")
		top      = flag.Int("show", 8, "how many detected flows to print")
	)
	flag.Parse()

	cfg := laps.DetectorConfig{
		AFCSize:          *afcSize,
		AnnexSize:        *annex,
		PromoteThreshold: *thresh,
		SampleProb:       *sample,
		Seed:             *seed,
	}
	if *policy == "lru" {
		cfg.Policy = 1
	}
	det := laps.NewDetector(cfg)
	truth := laps.NewExactCounter()

	if *pcapPath != "" {
		f, err := os.Open(*pcapPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		recs, err := laps.ReadPcap(bufio.NewReader(f))
		f.Close()
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		for _, r := range recs {
			det.Observe(r.Flow)
			truth.Observe(r.Flow)
		}
		fmt.Printf("analysed %d packets from %s\n", len(recs), *pcapPath)
	} else {
		var src laps.TraceSource
		switch *preset {
		case "caida":
			src = laps.CAIDATrace(*idx)
		case "auckland":
			src = laps.AucklandTrace(*idx)
		default:
			fmt.Fprintf(os.Stderr, "unknown preset %q\n", *preset)
			os.Exit(2)
		}
		for i := 0; i < *packets; i++ {
			rec, ok := src.Next()
			if !ok {
				break
			}
			det.Observe(rec.Flow)
			truth.Observe(rec.Flow)
		}
		fmt.Printf("analysed %d packets from %s\n", *packets, src.Name())
	}

	acc := laps.EvaluateDetector(det.Aggressive(), truth, *afcSize)
	fmt.Printf("flows: %d distinct; detector: AFC=%d annex=%d sample=%g policy=%s\n",
		truth.Flows(), *afcSize, *annex, *sample, *policy)
	fmt.Printf("detected=%d true-positives=%d false-positives=%d FPR=%.3f recall=%.3f\n",
		acc.Detected, acc.TruePositives, acc.FalsePositives, acc.FPR, acc.Recall)

	st := det.Stats()
	fmt.Printf("activity: observed=%d sampled=%d afc-hits=%d annex-hits=%d misses=%d promotions=%d\n",
		st.Observed, st.Sampled, st.AFCHits, st.AnnexHits, st.Misses, st.Promotions)

	ag := det.Aggressive()
	if *top > len(ag) {
		*top = len(ag)
	}
	fmt.Printf("hottest %d detected flows:\n", *top)
	for i := 0; i < *top; i++ {
		f := ag[len(ag)-1-i]
		fmt.Printf("  %-44v %8d packets\n", f, truth.Count(f))
	}
}
