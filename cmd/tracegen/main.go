// Command tracegen synthesises packet traces with realistic elephant/
// mice structure and writes them as classic pcap files, plus a rank-size
// summary (the Fig 2 view of the trace).
//
// Usage:
//
//	tracegen -preset caida -packets 100000 -o trace.pcap
//	tracegen -flows 50000 -skew 1.2 -packets 200000 -o custom.pcap
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"laps"
)

func main() {
	var (
		preset  = flag.String("preset", "", "trace preset: caida or auckland (overrides -flows/-skew)")
		idx     = flag.Int("i", 1, "preset instance index (different seeds)")
		flows   = flag.Int("flows", 20000, "flow population for custom traces")
		skew    = flag.Float64("skew", 1.1, "Zipf exponent for custom traces")
		seed    = flag.Uint64("seed", 1, "random seed for custom traces")
		packets = flag.Int("packets", 100000, "packets to generate")
		rate    = flag.Float64("rate", 1.0, "nominal rate in Mpps (sets pcap timestamps)")
		out     = flag.String("o", "", "output pcap path (empty: no pcap, summary only)")
	)
	flag.Parse()

	var src laps.TraceSource
	switch *preset {
	case "caida":
		src = laps.CAIDATrace(*idx)
	case "auckland":
		src = laps.AucklandTrace(*idx)
	case "":
		src = laps.NewTrace(laps.TraceConfig{
			Name: "custom", Flows: *flows, Skew: *skew, Seed: *seed,
		})
	default:
		fmt.Fprintf(os.Stderr, "unknown preset %q (want caida or auckland)\n", *preset)
		os.Exit(2)
	}

	gapNS := laps.Time(1e3 / *rate) // ns between packets at `rate` Mpps
	truth := laps.NewExactCounter()
	recs := make([]laps.TimedRecord, 0, *packets)
	ts := laps.Time(0)
	var bytes uint64
	for i := 0; i < *packets; i++ {
		rec, ok := src.Next()
		if !ok {
			break
		}
		truth.Observe(rec.Flow)
		bytes += uint64(rec.Size)
		recs = append(recs, laps.TimedRecord{Record: rec, TS: ts})
		ts += gapNS
	}

	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		w := bufio.NewWriter(f)
		if err := laps.WritePcap(w, recs); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := w.Flush(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s: %d packets, %d bytes of payload, %v span\n",
			*out, len(recs), bytes, ts)
	}

	fmt.Printf("trace %s: %d packets, %d distinct flows\n", src.Name(), len(recs), truth.Flows())
	rs := truth.RankSize()
	fmt.Println("rank   packets   share")
	for _, rank := range []int{1, 2, 4, 8, 16, 32, 100, 1000, 10000} {
		if rank-1 >= len(rs) {
			break
		}
		fmt.Printf("%5d  %8d  %5.2f%%\n", rank, rs[rank-1],
			100*float64(rs[rank-1])/float64(truth.Total()))
	}
	var top16 uint64
	for i := 0; i < 16 && i < len(rs); i++ {
		top16 += rs[i]
	}
	fmt.Printf("top-16 flows carry %.1f%% of packets\n", 100*float64(top16)/float64(truth.Total()))
}
