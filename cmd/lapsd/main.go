// Command lapsd runs the live LAPS engine as a long-running daemon fed
// by the UDP front door: datagrams in the LAPS wire format (see
// docs/INGRESS.md) arrive on -listen, are decoded into pooled packets
// and dispatched across the worker goroutines by the configured
// scheduler. SIGINT/SIGTERM shut it down cleanly — kernel-buffered
// datagrams are drained (bounded by -drain-grace), the rings empty, and
// a parsable summary is printed.
//
// Usage:
//
//	lapsd -listen 127.0.0.1:4040                 # run until signalled
//	lapsd -listen :4040 -http 127.0.0.1:9090     # + Prometheus /metrics, /healthz
//	lapsd -listen :0 -duration 10s -workers 8    # bounded benchmark run
//
// Drive it with lapsgen, which assigns per-flow sequence numbers so the
// summary's ooo/loss counters measure end-to-end delivery.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"laps"
	"laps/internal/ingress"
	"laps/internal/sim"
	"laps/internal/version"
)

var (
	listen     = flag.String("listen", "127.0.0.1:4040", "UDP address to receive LAPS wire-format datagrams on (:0 picks a free port)")
	httpAddr   = flag.String("http", "", "serve admin endpoints (/metrics, /healthz, /debug/pprof) on this address (:0 picks a free port)")
	workers    = flag.Int("workers", 4, "worker goroutines; the wire can carry any service, so at least the 4 service classes are needed")
	disp       = flag.Int("dispatchers", 0, "ingress dispatcher shards (0 = classic single dispatcher)")
	ringCap    = flag.Int("ring", 0, "per-worker SPSC ring capacity (0 = default 256)")
	batch      = flag.Int("batch", 0, "dispatch/consume batch size (0 = default 32)")
	sockets    = flag.Int("sockets", 1, "SO_REUSEPORT sockets (and reader goroutines) on -listen; >1 needs Linux, elsewhere falls back to one socket")
	rxBatch    = flag.Int("rx-batch", 0, "datagrams per receive batch — the recvmmsg vector length on Linux (0 = default 32)")
	rxAdapt    = flag.Bool("rx-adapt", true, "adapt the receive-vector length to the observed batch fill (Linux recvmmsg path)")
	rxMax      = flag.Int("rx-max", 0, "adaptive receive-vector ceiling (0 = default 256)")
	rcvbuf     = flag.Int("rcvbuf", 4<<20, "socket receive buffer request in bytes (kernel clamps to net.core.rmem_max; 0 leaves the default)")
	drop       = flag.Bool("drop", false, "drop packets when a worker ring is full instead of applying backpressure")
	duration   = flag.Duration("duration", 0, "wall-clock run length (0 = run until SIGINT/SIGTERM)")
	drainGrace = flag.Duration("drain-grace", 500*time.Millisecond, "shutdown ceiling for draining kernel-buffered datagrams")
	detect     = flag.Duration("detect", 0, "health-monitor detection window for stalled workers (0 disables)")
	sched      = flag.String("scheduler", "laps", "scheduler: laps, afs, hash-only or oracle")
	flowBudget = flag.Int("flow-budget", 0, "bound exact per-flow state to this many flows; past it the stack degrades per -memory (0 = unbounded)")
	memoryMode = flag.String("memory", "auto", "flow-state regime past -flow-budget (auto|exact|sketch); see docs/SCALE.md")
	showVer    = flag.Bool("version", false, "print version and exit")
)

func main() {
	flag.Parse()
	if *showVer {
		fmt.Println(version.String("lapsd"))
		return
	}
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "lapsd:", err)
		os.Exit(1)
	}
}

func run() error {
	if *sockets < 1 {
		return fmt.Errorf("-sockets must be >= 1 (got %d)", *sockets)
	}
	// Bind the ingress group and the admin socket up front so their real
	// addresses (":0" picks a port) are printed before traffic is
	// expected, not after the run. ListenGroup sets SO_REUSEPORT on every
	// socket when more than one is asked for — a plain pre-bound conn
	// could not be joined later.
	conns, reuse, err := ingress.ListenGroup(*listen, *sockets)
	if err != nil {
		return err
	}
	closeConns := func() {
		for _, c := range conns {
			c.Close()
		}
	}
	if *sockets > 1 && !reuse {
		fmt.Printf("lapsd: SO_REUSEPORT unavailable on this platform; falling back to 1 socket\n")
	}
	fmt.Printf("lapsd: listening on udp %s (sockets=%d workers=%d scheduler=%s dispatchers=%d)\n",
		conns[0].LocalAddr(), len(conns), *workers, *sched, *disp)

	mem, err := laps.ParseMemoryClass(*memoryMode)
	if err != nil {
		closeConns()
		return err
	}
	cfg := laps.RunConfig{
		StackConfig: laps.StackConfig{
			Scheduler:  laps.SchedulerKind(*sched),
			Duration:   sim.Time(duration.Nanoseconds()),
			FlowBudget: *flowBudget,
			Memory:     mem,
		},
		Workers:      *workers,
		Dispatchers:  *disp,
		RingCap:      *ringCap,
		Batch:        *batch,
		Block:        !*drop,
		Recycle:      true,
		DetectWindow: *detect,
		Ingress: &laps.IngressConfig{
			Conns:         conns,
			Batch:         *rxBatch,
			AdaptiveBatch: *rxAdapt,
			MaxBatch:      *rxMax,
			ReadBuffer:    *rcvbuf,
			DrainGrace:    *drainGrace,
		},
	}
	if *httpAddr != "" {
		ln, err := net.Listen("tcp", *httpAddr)
		if err != nil {
			closeConns()
			return err
		}
		cfg.HTTPListener = ln
		fmt.Printf("lapsd: admin endpoints on http://%s/ (metrics, healthz, debug/pprof)\n", ln.Addr())
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	cfg.Context = ctx

	res, err := laps.Run(cfg)
	if err != nil {
		return err
	}

	// One summary line per subsystem, key=value so scripts can assert on
	// loss and ordering without scraping /metrics.
	in, l := res.Ingress, res.Live
	fmt.Printf("lapsd: ingress datagrams=%d packets=%d malformed=%d sockets=%d rcvbuf=%d vector=%d grows=%d shrinks=%d\n",
		in.Datagrams, in.Packets, in.Malformed,
		len(res.IngressSockets), in.RcvBuf, in.VectorLen, in.BatchGrows, in.BatchShrinks)
	if len(res.IngressSockets) > 1 {
		for i, s := range res.IngressSockets {
			fmt.Printf("lapsd: socket %d datagrams=%d packets=%d vector=%d\n",
				i, s.Datagrams, s.Packets, s.VectorLen)
		}
	}
	fmt.Printf("lapsd: engine processed=%d dropped=%d ooo=%d migrations=%d fenced=%d wall=%v throughput=%.0f pps\n",
		l.Processed, l.Dropped, l.OutOfOrder, l.Migrations, l.Fenced,
		l.Elapsed.Round(time.Millisecond), float64(l.Processed)/l.Elapsed.Seconds())
	if *flowBudget > 0 || mem == laps.MemorySketch {
		fmt.Printf("lapsd: memory class=%s budget=%d budget-hits=%d estimated-ooo=%d\n",
			mem, *flowBudget, l.FlowBudgetHits, l.EstimatedOOO)
	}
	for _, w := range l.Workers {
		status := ""
		if w.Dead {
			status = " [dead]"
		}
		fmt.Printf("lapsd: worker %d processed=%d dropped=%d batches=%d%s\n",
			w.ID, w.Processed, w.Dropped, w.Batches, status)
	}
	if res.LapsStats != nil {
		s := res.LapsStats
		fmt.Printf("lapsd: laps migrations=%d core-requests=%d grants=%d surplus-marks=%d\n",
			s.Migrations, s.CoreRequests, s.CoreGrants, s.SurplusMarks)
	}
	return nil
}
