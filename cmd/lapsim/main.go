// Command lapsim runs the paper-reproduction experiments and prints
// their tables (ASCII by default, CSV with -csv).
//
// Usage:
//
//	lapsim -exp fig7                 # one experiment
//	lapsim -exp all -duration 500ms  # everything, longer window
//	lapsim -list                     # available experiments
//
// Telemetry mode (any of -trace/-chrome/-metrics) runs one instrumented
// scenario instead of the table experiments:
//
//	lapsim -trace out.jsonl                  # control-plane event stream
//	lapsim -chrome out.json -scenario T6     # chrome://tracing timeline
//	lapsim -metrics out.csv -metrics-interval 500us
//
// Live mode (-live) executes one scenario on real goroutine cores with
// SPSC rings instead of the simulator (see docs/RUNTIME.md):
//
//	lapsim -live -scenario T5 -live-workers 8
//	lapsim -live -pcap capture.pcap -live-pace 1   # paced pcap replay
//	lapsim -live -live-dispatchers 4               # sharded data plane
//	lapsim -live -http 127.0.0.1:9090              # Prometheus /metrics + /healthz
//
// The four modes (-exp, -list, -trace/-chrome/-metrics, -live) are
// mutually exclusive; combining them is a usage error.
//
// Profiling hooks (-cpuprofile/-memprofile) work in every mode.
package main

import (
	"flag"
	"fmt"
	"io"
	"log/slog"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"sort"
	"strconv"
	"strings"
	"time"

	"laps"
	"laps/internal/exp"
	"laps/internal/obs"
	"laps/internal/packet"
	"laps/internal/plot"
	"laps/internal/sim"
	"laps/internal/traffic"
	"laps/internal/version"
)

var (
	name     = flag.String("exp", "all", "experiment name or 'all'")
	list     = flag.Bool("list", false, "list experiments and exit")
	dur      = flag.Duration("duration", 200*time.Millisecond, "simulated traffic window per scenario")
	modelSec = flag.Float64("model-seconds", 60, "seconds of Holt-Winters dynamics the window sweeps")
	cores    = flag.Int("cores", 16, "number of processor cores")
	seed     = flag.Uint64("seed", 1, "random seed")
	workers  = flag.Int("workers", 0, "parallel scenario workers (0 = GOMAXPROCS)")
	packets  = flag.Int("stream-packets", 400000, "packets per trace for detector experiments")
	csv      = flag.Bool("csv", false, "emit CSV instead of aligned tables")
	jsonOut  = flag.Bool("json", false, "emit JSON instead of aligned tables")
	outPath  = flag.String("o", "", "write results to a file instead of stdout")
	svgDir   = flag.String("svg", "", "also render each table as an SVG chart into this directory")

	tracePath   = flag.String("trace", "", "run one instrumented scenario and write its event stream as JSONL to this file")
	chromePath  = flag.String("chrome", "", "like -trace but in Chrome trace-event JSON (open in chrome://tracing)")
	metricsPath = flag.String("metrics", "", "write the instrumented scenario's sampled time series as CSV to this file")
	metricsInt  = flag.Duration("metrics-interval", time.Millisecond, "simulated-time sampling interval for -metrics")
	scenario    = flag.String("scenario", "T5", "Table VI scenario (T1..T8) for telemetry and live mode")
	cpuProfile  = flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile  = flag.String("memprofile", "", "write a heap profile to this file at exit")
	verbose     = flag.Bool("v", false, "verbose (debug-level) progress logging")

	live        = flag.Bool("live", false, "run one scenario on live goroutine workers instead of the simulator")
	liveWorkers = flag.Int("live-workers", 4, "live mode: worker goroutines (cores)")
	liveDisp    = flag.Int("live-dispatchers", 0, "live mode: ingress dispatcher shards resolving flows lock-free against published forwarding snapshots (0 = classic single dispatcher)")
	livePace    = flag.Float64("live-pace", 0, "live mode: playback speed vs the virtual clock (1 = real time, 0 = flat out)")
	liveWork    = flag.String("live-work", "none", "live mode: per-packet work emulation (none|spin|sleep)")
	liveBlock   = flag.Bool("live-block", false, "live mode: apply backpressure instead of dropping on full rings")
	liveFaults  = flag.String("live-faults", "", "live mode: inject worker faults; comma-separated kind:worker@after[:duration] entries (stall:1@2000:500ms, slow:2@100:1s, kill:3@1500) or rand:SEED for a generated plan")
	liveDetect  = flag.Duration("live-detect", 100*time.Millisecond, "live mode: health-monitor detection window for stalled/dead workers (0 disables the monitor)")
	flowBudget  = flag.Int("flow-budget", 0, "live mode: bound exact per-flow state to this many flows; past it the stack degrades to sketch/hash-bucket tracking per -memory (0 = unbounded)")
	memoryMode  = flag.String("memory", "auto", "live mode: flow-state regime past -flow-budget (auto|exact|sketch); see docs/SCALE.md")
	pcapPath    = flag.String("pcap", "", "live mode: replay this pcap capture (looped) instead of the scenario traces")
	httpAddr    = flag.String("http", "", "live mode: serve admin endpoints (/metrics, /healthz, /debug/pprof) on this address for the duration of the run")
	showVer     = flag.Bool("version", false, "print version and exit")
)

// modeFlags maps each mode-selecting flag to the mode it requests, and
// optionFlags ties mode-specific options to the modes that honour them.
var (
	modeFlags = map[string]string{
		"exp":     "table",
		"list":    "list",
		"trace":   "telemetry",
		"chrome":  "telemetry",
		"metrics": "telemetry",
		"live":    "live",
	}
	optionFlags = map[string][]string{
		"metrics-interval": {"telemetry"},
		"scenario":         {"telemetry", "live"},
		"live-workers":     {"live"},
		"live-dispatchers": {"live"},
		"live-pace":        {"live"},
		"live-work":        {"live"},
		"live-block":       {"live"},
		"live-faults":      {"live"},
		"live-detect":      {"live"},
		"flow-budget":      {"live"},
		"memory":           {"live"},
		"pcap":             {"live"},
		"http":             {"live"},
	}
)

// validateFlags rejects flag combinations that mix modes, returning the
// selected mode ("table" when none was picked explicitly).
func validateFlags() (string, error) {
	set := map[string]bool{}
	flag.Visit(func(f *flag.Flag) { set[f.Name] = true })

	picked := map[string]bool{}
	for name, mode := range modeFlags {
		if set[name] {
			picked[mode] = true
		}
	}
	if len(picked) > 1 {
		modes := make([]string, 0, len(picked))
		for m := range picked {
			modes = append(modes, m)
		}
		sort.Strings(modes)
		return "", fmt.Errorf("flags select conflicting modes (%s): -exp, -list, -trace/-chrome/-metrics and -live are mutually exclusive",
			strings.Join(modes, ", "))
	}
	mode := "table"
	for m := range picked {
		mode = m
	}
	for name, modes := range optionFlags {
		if !set[name] {
			continue
		}
		ok := false
		for _, m := range modes {
			ok = ok || m == mode
		}
		if !ok {
			return "", fmt.Errorf("-%s only applies to %s mode", name, strings.Join(modes, "/"))
		}
	}
	if set["metrics-interval"] && *metricsInt <= 0 {
		return "", fmt.Errorf("-metrics-interval must be positive, got %v", *metricsInt)
	}
	if set["http"] && *httpAddr == "" {
		return "", fmt.Errorf("-http needs a listen address (e.g. -http 127.0.0.1:9090)")
	}
	return mode, nil
}

func main() {
	flag.Parse()
	if *showVer {
		fmt.Println(version.String("lapsim"))
		return
	}
	mode, err := validateFlags()
	if err != nil {
		fmt.Fprintf(os.Stderr, "lapsim: %v\n\n", err)
		flag.Usage()
		os.Exit(2)
	}

	lvl := slog.LevelWarn
	if *verbose {
		lvl = slog.LevelDebug
	}
	slog.SetDefault(slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: lvl})))

	if *list {
		for _, n := range exp.Names() {
			fmt.Printf("%-10s %s\n", n, exp.Registry()[n].Brief)
		}
		return
	}
	if err := run(mode); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run(mode string) error {
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
		slog.Debug("cpu profiling enabled", "path", *cpuProfile)
	}
	defer func() {
		if *memProfile == "" {
			return
		}
		f, err := os.Create(*memProfile)
		if err != nil {
			slog.Error("memprofile", "err", err)
			return
		}
		defer f.Close()
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			slog.Error("memprofile", "err", err)
		}
	}()

	opts := exp.Options{
		Duration:      sim.Time(dur.Nanoseconds()),
		ModelSeconds:  *modelSec,
		Cores:         *cores,
		Seed:          *seed,
		Workers:       *workers,
		StreamPackets: *packets,
	}

	switch mode {
	case "telemetry":
		return runTraced(opts)
	case "live":
		return runLive(opts)
	default:
		return runTables(opts)
	}
}

// runLive executes one Table VI scenario (or a pcap replay) on the live
// goroutine runtime and prints its data-path counters.
func runLive(opts exp.Options) error {
	var work laps.WorkKind
	switch *liveWork {
	case "none":
		work = laps.WorkNone
	case "spin":
		work = laps.WorkSpin
	case "sleep":
		work = laps.WorkSleep
	default:
		return fmt.Errorf("unknown -live-work %q (want none, spin or sleep)", *liveWork)
	}

	mem, err := laps.ParseMemoryClass(*memoryMode)
	if err != nil {
		return err
	}
	cfg := laps.RunConfig{
		StackConfig: laps.StackConfig{
			Duration:        sim.Time(dur.Nanoseconds()),
			TimeCompression: opts.ModelSeconds / dur.Seconds(),
			Seed:            *seed,
			FlowBudget:      *flowBudget,
			Memory:          mem,
		},
		Workers:      *liveWorkers,
		Dispatchers:  *liveDisp,
		Pace:         *livePace,
		Block:        *liveBlock,
		Work:         work,
		DetectWindow: *liveDetect,
		HTTPAddr:     *httpAddr,
	}
	if *httpAddr != "" {
		fmt.Fprintf(os.Stderr, "serving admin endpoints on http://%s/ (metrics, healthz, debug/pprof)\n", *httpAddr)
	}
	if *liveFaults != "" {
		plan, err := parseFaultPlan(*liveFaults, *liveWorkers)
		if err != nil {
			return err
		}
		cfg.Faults = plan
	}
	if *pcapPath != "" {
		f, err := os.Open(*pcapPath)
		if err != nil {
			return err
		}
		recs, err := laps.ReadPcap(f)
		f.Close()
		if err != nil {
			return err
		}
		if len(recs) == 0 {
			return fmt.Errorf("%s: empty capture", *pcapPath)
		}
		rs := make([]laps.TraceRecord, len(recs))
		for i, r := range recs {
			rs[i] = r.Record
		}
		cfg.Traffic = []laps.ServiceTraffic{{
			Service: laps.SvcIPForward,
			Params:  traffic.Set1()[packet.SvcIPForward],
			Trace:   laps.ReplayTrace(filepath.Base(*pcapPath), rs, true),
		}}
	} else {
		sc, err := findScenario(*scenario)
		if err != nil {
			return err
		}
		for svc := 0; svc < packet.NumServices; svc++ {
			cfg.Traffic = append(cfg.Traffic, laps.ServiceTraffic{
				Service: packet.ServiceID(svc),
				Params:  sc.Params[svc],
				Trace:   sc.Group.Sources[svc](),
			})
		}
	}

	slog.Debug("live run", "workers", *liveWorkers, "duration", *dur,
		"pace", *livePace, "work", *liveWork)
	res, err := laps.Run(cfg)
	if err != nil {
		return err
	}
	l := res.Live
	fmt.Printf("live run: %d workers, scheduler %s, wall %v\n",
		*liveWorkers, res.Scheduler, l.Elapsed.Round(time.Millisecond))
	if l.Dispatchers > 0 {
		fmt.Printf("  sharded: dispatchers=%d snapshots=%d feedback-dropped=%d max-staleness=%v\n",
			l.Dispatchers, l.Snapshots, l.FeedbackDropped, l.MaxSnapshotStaleness.Round(time.Microsecond))
	}
	fmt.Printf("  generated=%d dispatched=%d processed=%d dropped=%d (%.2f%% loss)\n",
		res.Generated, l.Dispatched, l.Processed, l.Dropped,
		100*float64(l.Dropped)/float64(max(l.Dispatched, 1)))
	fmt.Printf("  migrations=%d fenced=%d out-of-order=%d max-fence-hold=%v throughput=%.0f pps\n",
		l.Migrations, l.Fenced, l.OutOfOrder, l.MaxFenceHold.Round(time.Microsecond),
		float64(l.Processed)/l.Elapsed.Seconds())
	if *flowBudget > 0 || mem == laps.MemorySketch {
		fmt.Printf("  memory: class=%s budget=%d budget-hits=%d estimated-ooo=%d\n",
			mem, *flowBudget, l.FlowBudgetHits, l.EstimatedOOO)
	}
	if cfg.Faults != nil || l.WorkerDeaths > 0 {
		fmt.Printf("  faults: stalls=%d deaths=%d reinjected=%d recovered-flows=%d forced=%d stranded=%d max-detect=%v\n",
			l.WorkerStalls, l.WorkerDeaths, l.Reinjected, l.Recovered,
			l.Forced, l.Stranded, l.MaxDetect.Round(time.Millisecond))
	}
	for _, w := range l.Workers {
		status := ""
		if w.Dead {
			status = " [dead]"
		}
		fmt.Printf("  worker %d: processed=%d dropped=%d batches=%d%s\n",
			w.ID, w.Processed, w.Dropped, w.Batches, status)
	}
	if res.LapsStats != nil {
		s := res.LapsStats
		fmt.Printf("  laps: migrations=%d core-requests=%d grants=%d surplus-marks=%d\n",
			s.Migrations, s.CoreRequests, s.CoreGrants, s.SurplusMarks)
	}
	return nil
}

// parseFaultPlan parses the -live-faults spec: comma-separated entries
// of the form kind:worker@after[:duration] — e.g. "stall:1@2000:500ms",
// "kill:3@1500", "slow:2@100:1s" — or "rand:SEED" to splice in a
// generated plan (two stalls plus one kill; worker 0 always survives).
func parseFaultPlan(spec string, workers int) (*laps.FaultPlan, error) {
	plan := &laps.FaultPlan{}
	for _, ent := range strings.Split(spec, ",") {
		ent = strings.TrimSpace(ent)
		if ent == "" {
			continue
		}
		parts := strings.SplitN(ent, ":", 3)
		if parts[0] == "rand" {
			if len(parts) != 2 {
				return nil, fmt.Errorf("-live-faults: want rand:SEED, got %q", ent)
			}
			rseed, err := strconv.ParseUint(parts[1], 0, 64)
			if err != nil {
				return nil, fmt.Errorf("-live-faults: bad seed in %q: %v", ent, err)
			}
			p := laps.RandomFaultPlan(rseed, workers, 2, 1, 5000, 500*time.Millisecond)
			plan.Faults = append(plan.Faults, p.Faults...)
			continue
		}
		var kind laps.FaultKind
		switch parts[0] {
		case "stall":
			kind = laps.FaultStall
		case "slow":
			kind = laps.FaultSlow
		case "kill":
			kind = laps.FaultKill
		default:
			return nil, fmt.Errorf("-live-faults: unknown kind %q in %q (want stall, slow, kill or rand)", parts[0], ent)
		}
		if len(parts) < 2 {
			return nil, fmt.Errorf("-live-faults: %q: want kind:worker@after[:duration]", ent)
		}
		wa := strings.SplitN(parts[1], "@", 2)
		if len(wa) != 2 {
			return nil, fmt.Errorf("-live-faults: %q: want kind:worker@after[:duration]", ent)
		}
		w, err := strconv.Atoi(wa[0])
		if err != nil {
			return nil, fmt.Errorf("-live-faults: bad worker in %q: %v", ent, err)
		}
		after, err := strconv.ParseUint(wa[1], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("-live-faults: bad trigger count in %q: %v", ent, err)
		}
		f := laps.Fault{Worker: w, After: after, Kind: kind}
		if len(parts) == 3 {
			d, err := time.ParseDuration(parts[2])
			if err != nil {
				return nil, fmt.Errorf("-live-faults: bad duration in %q: %v", ent, err)
			}
			f.Duration = d
		}
		plan.Faults = append(plan.Faults, f)
	}
	if len(plan.Faults) == 0 {
		return nil, fmt.Errorf("-live-faults: empty spec")
	}
	return plan, nil
}

// findScenario resolves a Table VI scenario by name.
func findScenario(name string) (exp.Scenario, error) {
	for _, sc := range exp.Scenarios() {
		if sc.Name == name {
			return sc, nil
		}
	}
	return exp.Scenario{}, fmt.Errorf("unknown scenario %q (want T1..T8)", name)
}

// runTraced executes one instrumented scenario and writes the requested
// telemetry artifacts.
func runTraced(opts exp.Options) error {
	rec := obs.NewRecorder(0)
	var interval sim.Time
	if *metricsPath != "" {
		// validateFlags already rejected a non-positive -metrics-interval.
		interval = sim.Time(metricsInt.Nanoseconds())
	}
	slog.Debug("telemetry run", "scenario", *scenario, "duration", *dur, "interval", interval)

	start := time.Now()
	res, err := exp.Traced(opts, *scenario, rec, interval)
	if err != nil {
		return err
	}
	slog.Debug("telemetry run done", "elapsed", time.Since(start).Round(time.Millisecond),
		"events", rec.Total(), "overwritten", rec.Overwritten())

	writeEvents := func(path string, mk func(io.Writer) obs.Sink) error {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		s := mk(f)
		for _, e := range rec.Events() {
			if err := s.Write(e); err != nil {
				return err
			}
		}
		return s.Close()
	}
	if *tracePath != "" {
		if err := writeEvents(*tracePath, func(w io.Writer) obs.Sink { return obs.NewJSONLSink(w) }); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "wrote %s (%d events)\n", *tracePath, rec.Len())
	}
	if *chromePath != "" {
		if err := writeEvents(*chromePath, func(w io.Writer) obs.Sink { return obs.NewChromeTraceSink(w) }); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "wrote %s (%d events)\n", *chromePath, rec.Len())
	}
	if *metricsPath != "" {
		f, err := os.Create(*metricsPath)
		if err != nil {
			return err
		}
		if err := res.Series.WriteCSV(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "wrote %s (%d samples)\n", *metricsPath, res.Series.Len())
	}

	m := res.Metrics
	fmt.Printf("scenario %s: %d events captured (%d lost to ring overwrite)\n",
		res.Scenario, rec.Total(), rec.Overwritten())
	fmt.Printf("  migrations=%d map-splits=%d map-merges=%d core-steals=%d surplus-marks=%d\n",
		rec.Count(obs.EvFlowMigration), rec.Count(obs.EvMapSplit), rec.Count(obs.EvMapMerge),
		rec.Count(obs.EvCoreSteal), rec.Count(obs.EvSurplusMark))
	fmt.Printf("  afc-promotes=%d drops=%d ooo-departs=%d\n",
		rec.Count(obs.EvAFCPromote), rec.Count(obs.EvDrop), rec.Count(obs.EvOOODepart))
	fmt.Printf("  metrics: injected=%d dropped=%d completed=%d ooo=%d migrations=%d\n",
		m.Injected, m.Dropped, m.Completed, m.OutOfOrder, m.Migrations)
	return nil
}

// runTables executes the named table experiments (the default mode).
func runTables(opts exp.Options) error {
	start := time.Now()
	var tables []exp.Table
	if *name == "all" {
		tables = exp.RunAll(opts)
	} else {
		var err error
		tables, err = exp.Run(*name, opts)
		if err != nil {
			return err
		}
	}
	slog.Debug("experiments done", "tables", len(tables), "elapsed", time.Since(start).Round(time.Millisecond))
	out := os.Stdout
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			return err
		}
		defer f.Close()
		out = f
	}
	if *svgDir != "" {
		if err := os.MkdirAll(*svgDir, 0o755); err != nil {
			return err
		}
		for i := range tables {
			svg, err := plot.Auto(tables[i].Title, tables[i].Columns, tables[i].Rows, plot.Options{})
			if err != nil {
				fmt.Fprintf(os.Stderr, "svg: skipping %q: %v\n", tables[i].Title, err)
				continue
			}
			path := filepath.Join(*svgDir, fmt.Sprintf("table-%02d.svg", i+1))
			if err := os.WriteFile(path, svg, 0o644); err != nil {
				return err
			}
			fmt.Fprintf(os.Stderr, "wrote %s\n", path)
		}
	}
	for i := range tables {
		switch {
		case *jsonOut:
			if err := tables[i].JSON(out); err != nil {
				return err
			}
		case *csv:
			tables[i].CSV(out)
			fmt.Fprintln(out)
		default:
			tables[i].Fprint(out)
		}
	}
	fmt.Fprintf(os.Stderr, "completed in %v\n", time.Since(start).Round(time.Millisecond))
	return nil
}
