// Command lapsim runs the paper-reproduction experiments and prints
// their tables (ASCII by default, CSV with -csv).
//
// Usage:
//
//	lapsim -exp fig7                 # one experiment
//	lapsim -exp all -duration 500ms  # everything, longer window
//	lapsim -list                     # available experiments
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"laps/internal/exp"
	"laps/internal/plot"
	"laps/internal/sim"
)

func main() {
	var (
		name     = flag.String("exp", "all", "experiment name or 'all'")
		list     = flag.Bool("list", false, "list experiments and exit")
		dur      = flag.Duration("duration", 200*time.Millisecond, "simulated traffic window per scenario")
		modelSec = flag.Float64("model-seconds", 60, "seconds of Holt-Winters dynamics the window sweeps")
		cores    = flag.Int("cores", 16, "number of processor cores")
		seed     = flag.Uint64("seed", 1, "random seed")
		workers  = flag.Int("workers", 0, "parallel scenario workers (0 = GOMAXPROCS)")
		packets  = flag.Int("stream-packets", 400000, "packets per trace for detector experiments")
		csv      = flag.Bool("csv", false, "emit CSV instead of aligned tables")
		jsonOut  = flag.Bool("json", false, "emit JSON instead of aligned tables")
		outPath  = flag.String("o", "", "write results to a file instead of stdout")
		svgDir   = flag.String("svg", "", "also render each table as an SVG chart into this directory")
	)
	flag.Parse()

	if *list {
		for _, n := range exp.Names() {
			fmt.Printf("%-10s %s\n", n, exp.Registry()[n].Brief)
		}
		return
	}

	opts := exp.Options{
		Duration:      sim.Time(dur.Nanoseconds()),
		ModelSeconds:  *modelSec,
		Cores:         *cores,
		Seed:          *seed,
		Workers:       *workers,
		StreamPackets: *packets,
	}

	start := time.Now()
	var tables []exp.Table
	if *name == "all" {
		tables = exp.RunAll(opts)
	} else {
		var err error
		tables, err = exp.Run(*name, opts)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
	}
	out := os.Stdout
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		out = f
	}
	if *svgDir != "" {
		if err := os.MkdirAll(*svgDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		for i := range tables {
			svg, err := plot.Auto(tables[i].Title, tables[i].Columns, tables[i].Rows, plot.Options{})
			if err != nil {
				fmt.Fprintf(os.Stderr, "svg: skipping %q: %v\n", tables[i].Title, err)
				continue
			}
			path := filepath.Join(*svgDir, fmt.Sprintf("table-%02d.svg", i+1))
			if err := os.WriteFile(path, svg, 0o644); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			fmt.Fprintf(os.Stderr, "wrote %s\n", path)
		}
	}
	for i := range tables {
		switch {
		case *jsonOut:
			if err := tables[i].JSON(out); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		case *csv:
			tables[i].CSV(out)
			fmt.Fprintln(out)
		default:
			tables[i].Fprint(out)
		}
	}
	fmt.Fprintf(os.Stderr, "completed in %v\n", time.Since(start).Round(time.Millisecond))
}
