// Command lapsgen generates LAPS wire-format UDP load for lapsd (or any
// laps.Run with Ingress set). It assigns each flow its per-flow sequence
// numbers, so the receiver's reorder tracker and drop counters measure
// loss and out-of-order delivery end to end — lapsgen says how many
// packets were sent, lapsd's summary says how many arrived and whether
// any flow was reordered.
//
// Three header sources, most specific wins:
//
//	lapsgen -target 127.0.0.1:4040                      # synthetic: -flows round-robin
//	lapsgen -target :4040 -scenario T5 -count 200000    # Table VI trace mixture
//	lapsgen -target :4040 -pcap capture.pcap            # replay a capture (looped)
//
// -pps paces the stream; leave it 0 only when the receiver applies
// backpressure or the kernel socket buffers out-run the burst.
package main

import (
	"flag"
	"fmt"
	"math/rand/v2"
	"os"
	"time"

	"laps"
	"laps/internal/exp"
	"laps/internal/packet"
	"laps/internal/trace"
	"laps/internal/version"
)

var (
	target     = flag.String("target", "", "UDP address to send to (required)")
	count      = flag.Int("count", 100000, "packets to send")
	nFlows     = flag.Int("flows", 1024, "synthetic mode: distinct flows, round-robin interleaved")
	scenario   = flag.String("scenario", "", "send a Table VI scenario's trace mixture (T1..T8) instead of synthetic flows")
	pcapPath   = flag.String("pcap", "", "replay this pcap capture (looped) instead of synthetic flows")
	pps        = flag.Float64("pps", 0, "pace the stream to this many packets per second (0 = flat out)")
	conns      = flag.Int("conns", 1, "source sockets; flows pin to a socket by the dispatcher's CRC16 hash, so a REUSEPORT receiver sees that many 4-tuples")
	dgramBatch = flag.Int("dgram-batch", 32, "records per datagram (1..255; 32 ≈ 644-byte datagrams)")
	seed       = flag.Uint64("seed", 1, "synthetic flow-population seed")
	showVer    = flag.Bool("version", false, "print version and exit")
)

func main() {
	flag.Parse()
	if *showVer {
		fmt.Println(version.String("lapsgen"))
		return
	}
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "lapsgen:", err)
		os.Exit(1)
	}
}

// next yields the flow header and service of one packet to send.
type next func(i int) (packet.FlowKey, packet.ServiceID, int)

func run() error {
	if *target == "" {
		return fmt.Errorf("-target is required (e.g. -target 127.0.0.1:4040)")
	}
	if *scenario != "" && *pcapPath != "" {
		return fmt.Errorf("-scenario and -pcap are mutually exclusive header sources")
	}
	if *count <= 0 {
		return fmt.Errorf("-count must be positive, got %d", *count)
	}
	if *conns < 1 {
		return fmt.Errorf("-conns must be >= 1, got %d", *conns)
	}
	src, err := headerSource()
	if err != nil {
		return err
	}
	s, err := dialFanout(*target, *conns, *dgramBatch)
	if err != nil {
		return err
	}
	defer s.Close()
	start := time.Now()
	for i := 0; i < *count; i++ {
		flow, svc, size := src(i)
		if err := s.Send(flow, svc, size); err != nil {
			return err
		}
		// Pace at datagram granularity: hold the stream back whenever it
		// runs ahead of the requested rate.
		if *pps > 0 && (i+1)%*dgramBatch == 0 {
			if err := s.Flush(); err != nil {
				return err
			}
			ahead := time.Duration(float64(i+1) / *pps * float64(time.Second))
			if d := ahead - time.Since(start); d > 0 {
				time.Sleep(d)
			}
		}
	}
	if err := s.Flush(); err != nil {
		return err
	}
	elapsed := time.Since(start)
	fmt.Printf("lapsgen: sent=%d flows=%d datagrams=%d conns=%d elapsed=%v pps=%.0f\n",
		s.Sent(), s.Flows(), s.Datagrams(), s.Conns(), elapsed.Round(time.Millisecond),
		float64(s.Sent())/elapsed.Seconds())
	return nil
}

// headerSource builds the per-packet header stream for the chosen mode.
func headerSource() (next, error) {
	switch {
	case *pcapPath != "":
		f, err := os.Open(*pcapPath)
		if err != nil {
			return nil, err
		}
		recs, err := laps.ReadPcap(f)
		f.Close()
		if err != nil {
			return nil, err
		}
		if len(recs) == 0 {
			return nil, fmt.Errorf("%s: empty capture", *pcapPath)
		}
		return func(i int) (packet.FlowKey, packet.ServiceID, int) {
			r := recs[i%len(recs)]
			return r.Flow, packet.SvcIPForward, r.Size
		}, nil

	case *scenario != "":
		var sc *exp.Scenario
		for _, c := range exp.Scenarios() {
			if c.Name == *scenario {
				sc = &c
				break
			}
		}
		if sc == nil {
			return nil, fmt.Errorf("unknown scenario %q (want T1..T8)", *scenario)
		}
		var srcs [packet.NumServices]trace.Source
		for svc := range srcs {
			srcs[svc] = sc.Group.Sources[svc]()
		}
		return func(i int) (packet.FlowKey, packet.ServiceID, int) {
			svc := i % packet.NumServices
			rec, ok := srcs[svc].Next()
			if !ok { // synthetic sources never exhaust, but stay total
				rec = trace.Record{Flow: packet.FlowKey{Proto: packet.ProtoUDP}, Size: 64}
			}
			return rec.Flow, packet.ServiceID(svc), rec.Size
		}, nil

	default:
		if *nFlows <= 0 {
			return nil, fmt.Errorf("-flows must be positive, got %d", *nFlows)
		}
		// A fixed population of seeded flows, services striped across it,
		// packets round-robin interleaved — the worst case for any ingress
		// path that could reorder by batching per flow.
		rng := rand.New(rand.NewPCG(*seed, 0x6c61707367656e)) // "lapsgen"
		flows := make([]packet.FlowKey, *nFlows)
		for i := range flows {
			flows[i] = packet.FlowKey{
				SrcIP:   rng.Uint32(),
				DstIP:   rng.Uint32(),
				SrcPort: uint16(rng.Uint32()),
				DstPort: uint16(rng.Uint32()),
				Proto:   packet.ProtoUDP,
			}
		}
		return func(i int) (packet.FlowKey, packet.ServiceID, int) {
			f := i % len(flows)
			return flows[f], packet.ServiceID(f % packet.NumServices), 64
		}, nil
	}
}
