package main

import (
	"net"

	"laps/internal/crc"
	"laps/internal/ingress"
	"laps/internal/packet"
)

// fanout spreads the generated stream across N connected UDP sockets,
// one Sender per socket, routing each flow to a fixed socket by the
// same CRC16 hash the receiver's dispatcher uses. The pinning is what
// makes multi-connection load a valid ordering probe: a flow's records
// all leave on one socket (so its Sender-assigned sequence numbers
// leave in order), and on a REUSEPORT receiver one source socket is one
// 4-tuple, which the kernel hashes to exactly one listener — per-flow
// FIFO holds end to end. Spreading a flow round-robin instead would
// manufacture reordering the engine never caused.
type fanout struct {
	conns   []net.Conn
	senders []*ingress.Sender
}

// dialFanout opens n connected sockets to target. Each gets its own
// ephemeral source port, so a REUSEPORT receiver sees n distinct
// 4-tuples to hash across its sockets.
func dialFanout(target string, n, dgramBatch int) (*fanout, error) {
	f := &fanout{
		conns:   make([]net.Conn, 0, n),
		senders: make([]*ingress.Sender, 0, n),
	}
	for i := 0; i < n; i++ {
		c, err := net.Dial("udp", target)
		if err != nil {
			f.Close()
			return nil, err
		}
		f.conns = append(f.conns, c)
		f.senders = append(f.senders, ingress.NewSender(c, dgramBatch))
	}
	return f, nil
}

// pick routes a flow to its fixed sender.
func (f *fanout) pick(flow packet.FlowKey) *ingress.Sender {
	if len(f.senders) == 1 {
		return f.senders[0]
	}
	return f.senders[int(crc.FlowHash(flow))%len(f.senders)]
}

// Send queues one packet on the flow's socket, assigning its next
// per-flow sequence number there (each flow lives in exactly one
// sender's table, so the numbering is globally consistent).
func (f *fanout) Send(flow packet.FlowKey, svc packet.ServiceID, size int) error {
	return f.pick(flow).Send(flow, svc, size)
}

// Flush writes every socket's pending datagram; the first error wins
// but every socket is still flushed.
func (f *fanout) Flush() error {
	var first error
	for _, s := range f.senders {
		if err := s.Flush(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

func (f *fanout) Close() {
	for _, c := range f.conns {
		c.Close() //nolint:errcheck // shutdown path
	}
}

// Sent, Datagrams and Flows sum across sockets; Flows is exact because
// flow→socket pinning means no flow is counted twice.
func (f *fanout) Sent() uint64 {
	var n uint64
	for _, s := range f.senders {
		n += s.Sent()
	}
	return n
}

func (f *fanout) Datagrams() uint64 {
	var n uint64
	for _, s := range f.senders {
		n += s.Datagrams()
	}
	return n
}

func (f *fanout) Flows() int {
	n := 0
	for _, s := range f.senders {
		n += s.Flows()
	}
	return n
}

func (f *fanout) Conns() int { return len(f.conns) }
