package laps

import (
	"laps/internal/npsim"
	"laps/internal/sched"
)

// newAFS, newHashOnly and newOracle construct the baseline schedulers.
// They live behind tiny constructors so the facade file reads cleanly
// and so users of the public API can also get baselines directly.

// NewAFSScheduler returns Dittmann's Arbitrary Flow Shift baseline.
func NewAFSScheduler() CoreScheduler { return newAFS() }

// NewHashScheduler returns a static CRC16 hash scheduler (no migration).
func NewHashScheduler() CoreScheduler { return newHashOnly() }

// NewOracleScheduler returns Shi et al.'s exact per-flow-statistics
// top-k migrator.
func NewOracleScheduler(k int) CoreScheduler { return newOracle(k) }

func newAFS() npsim.Scheduler      { return &sched.AFS{} }
func newHashOnly() npsim.Scheduler { return sched.HashOnly{} }
func newOracle(k int) npsim.Scheduler {
	return &sched.TopKOracle{K: k}
}
