module laps

go 1.22
