package laps_test

import (
	"testing"

	"laps"
)

// TestIntegrationPaperOrderings runs a medium single-service overload
// scenario across all schedulers and asserts the paper's headline
// orderings hold end-to-end through the public API.
func TestIntegrationPaperOrderings(t *testing.T) {
	if testing.Short() {
		t.Skip("integration run takes ~10s")
	}
	run := func(kind laps.SchedulerKind) *laps.SimResult {
		res, err := laps.Simulate(laps.SimConfig{
			StackConfig: laps.StackConfig{
				Scheduler: kind,
				Duration:  15 * laps.Millisecond,
				Seed:      5,
				Traffic: []laps.ServiceTraffic{{
					Service: laps.SvcIPForward,
					Params:  laps.RateParams{A: 33.6, Sigma: 0.7},
					Trace:   laps.CAIDATrace(3),
				}},
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	noMig := run(laps.HashOnly)
	afs := run(laps.AFS)
	lapsRes := run(laps.LAPS)
	oracle := run(laps.Oracle)

	// Ordering 1: AFS reorders massively; LAPS reorders a small fraction
	// of that; no-migration reorders nothing.
	if noMig.Metrics.OutOfOrder != 0 {
		t.Errorf("hash-only OOO = %d, want 0", noMig.Metrics.OutOfOrder)
	}
	if lapsRes.Metrics.OutOfOrder*3 > afs.Metrics.OutOfOrder {
		t.Errorf("LAPS OOO %d not well below AFS %d",
			lapsRes.Metrics.OutOfOrder, afs.Metrics.OutOfOrder)
	}
	// Ordering 2: LAPS migrates a small fraction of AFS's flows.
	if lapsRes.Metrics.Migrations*3 > afs.Metrics.Migrations {
		t.Errorf("LAPS migrations %d not well below AFS %d",
			lapsRes.Metrics.Migrations, afs.Metrics.Migrations)
	}
	// Ordering 3: migrating top flows must not be catastrophically worse
	// than AFS on drops, and must see the oracle as an upper bound story.
	if lapsRes.Metrics.DropRate() > 2*afs.Metrics.DropRate() {
		t.Errorf("LAPS drop rate %.3f more than 2x AFS %.3f",
			lapsRes.Metrics.DropRate(), afs.Metrics.DropRate())
	}
	if oracle.Metrics.Completed == 0 {
		t.Error("oracle completed nothing")
	}
}

// TestIntegrationRestoreOrder exercises the egress re-order buffer
// through the public API: after restoration an AFS run has (almost) no
// out-of-order packets left, at a measurable buffering cost.
func TestIntegrationRestoreOrder(t *testing.T) {
	res, err := laps.Simulate(laps.SimConfig{
		StackConfig: laps.StackConfig{
			Scheduler: laps.AFS,
			Duration:  8 * laps.Millisecond,
			Seed:      5,
			Traffic: []laps.ServiceTraffic{{
				Service: laps.SvcIPForward,
				Params:  laps.RateParams{A: 33.6, Sigma: 0.7},
				Trace:   laps.CAIDATrace(3),
			}},
		},
		RestoreOrder: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Restored == nil {
		t.Fatal("RestoreOrder set but no Restored result")
	}
	before := res.Metrics.OutOfOrder
	after := res.Restored.OutOfOrderAfter
	if before == 0 {
		t.Fatal("test degenerate: AFS produced no reordering")
	}
	if after*10 > before {
		t.Fatalf("restoration left %d of %d OOO packets", after, before)
	}
	if res.Restored.Buffer.Held == 0 || res.Restored.Buffer.MaxOccupancy == 0 {
		t.Fatal("restoration claims to be free — buffer never held anything")
	}
}

// TestIntegrationPowerPipeline exercises CoreReports → AnalyzePower.
func TestIntegrationPowerPipeline(t *testing.T) {
	// Asymmetric services: the scan service is nearly silent, so its
	// LAPS partition idles in long, gateable blocks. (Uniformly light
	// load would fragment idleness into sub-breakeven gaps — correctly
	// yielding zero savings.)
	res, err := laps.Simulate(laps.SimConfig{
		StackConfig: laps.StackConfig{
			Duration: 5 * laps.Millisecond,
			Seed:     2,
			Traffic: []laps.ServiceTraffic{
				{Service: laps.SvcIPForward, Params: laps.RateParams{A: 6},
					Trace: laps.CAIDATrace(1)},
				{Service: laps.SvcMalwareScan, Params: laps.RateParams{A: 0.005},
					Trace: laps.AucklandTrace(1)},
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cores) != 16 {
		t.Fatalf("Cores = %d reports", len(res.Cores))
	}
	est := laps.AnalyzePower(res.Cores, res.Duration, laps.DefaultPowerModel())
	if est.WithGating <= 0 || est.WithoutGating <= 0 {
		t.Fatalf("estimate %v", est)
	}
	if est.WithGating > est.WithoutGating+1e-12 {
		t.Fatalf("gating increased energy: %v > %v", est.WithGating, est.WithoutGating)
	}
	if est.Savings() <= 0 {
		t.Fatalf("no savings with an idle service partition: %v", est)
	}
}

// TestIntegrationMultiserviceIsolation verifies through the public API
// that LAPS keeps services on disjoint cores (the I-cache property):
// cold-cache events must be limited to first-packet program loads and
// core reallocations, i.e. orders of magnitude below FCFS.
func TestIntegrationMultiserviceIsolation(t *testing.T) {
	traffic := func() []laps.ServiceTraffic {
		return []laps.ServiceTraffic{
			{Service: laps.SvcIPForward, Params: laps.RateParams{A: 2.2},
				Trace: laps.CAIDATrace(1)},
			{Service: laps.SvcMalwareScan, Params: laps.RateParams{A: 0.3},
				Trace: laps.AucklandTrace(1)},
			{Service: laps.SvcVPNIn, Params: laps.RateParams{A: 0.12},
				Trace: laps.AucklandTrace(2)},
			{Service: laps.SvcVPNOut, Params: laps.RateParams{A: 0.2},
				Trace: laps.CAIDATrace(2)},
		}
	}
	fcfs, err := laps.Simulate(laps.SimConfig{StackConfig: laps.StackConfig{
		Scheduler: laps.FCFS, Duration: 6 * laps.Millisecond, Seed: 3, Traffic: traffic()}})
	if err != nil {
		t.Fatal(err)
	}
	lp, err := laps.Simulate(laps.SimConfig{StackConfig: laps.StackConfig{
		Scheduler: laps.LAPS, Duration: 6 * laps.Millisecond, Seed: 3, Traffic: traffic()}})
	if err != nil {
		t.Fatal(err)
	}
	if fcfs.Metrics.ColdCache < 100*lp.Metrics.ColdCache {
		t.Fatalf("cold caches: fcfs %d vs laps %d — isolation not working",
			fcfs.Metrics.ColdCache, lp.Metrics.ColdCache)
	}
	// At this light load both complete everything, but FCFS burns far
	// more core time doing it (every service switch refills the I-cache).
	if fcfs.Metrics.BusyTime < 2*lp.Metrics.BusyTime {
		t.Fatalf("FCFS busy %v not well above LAPS %v despite cold caches",
			fcfs.Metrics.BusyTime, lp.Metrics.BusyTime)
	}
}
